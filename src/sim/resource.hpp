#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/sim/task.hpp"
#include "src/sim/time.hpp"

namespace lifl::sim {

/// A FIFO multi-server resource: up to `capacity` jobs in service, the rest
/// queued in arrival order.
///
/// Used to model every point of contention in the platform: a node's core
/// pool, the kernel network-processing budget (the contention behind Fig. 4),
/// the NIC wire, and the gateway's assigned cores (vertically scaled, §4.2).
/// Utilization and waiting statistics are tracked exactly (piecewise-constant
/// integrals), which the benches use for CPU-utilization figures.
///
/// Completion callbacks are `sim::Task`s parked in a slab: the event the
/// simulator carries is a 12-byte {resource, slot} trampoline, so submitting
/// a job performs no per-job heap allocation however large the caller's
/// capture is (beyond the Task's own inline/heap policy).
class Resource {
 public:
  using Callback = Task;

  Resource(Simulator& sim, std::string name, std::uint32_t capacity);
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Submit a job needing `service_time` seconds of a server; `on_complete`
  /// fires when the job finishes service. Zero-duration jobs still respect
  /// FIFO order.
  void acquire(SimTime service_time, Callback on_complete);

  /// Change the number of servers (vertical scaling). Growing starts queued
  /// jobs immediately; shrinking lets in-service jobs finish (no preemption).
  void set_capacity(std::uint32_t capacity);

  const std::string& name() const noexcept { return name_; }
  std::uint32_t capacity() const noexcept { return capacity_; }
  std::uint32_t busy() const noexcept { return busy_; }
  std::size_t queue_length() const noexcept { return queue_.size(); }

  /// Completed job count.
  std::uint64_t completed() const noexcept { return completed_; }

  /// Integral of (number of busy servers) dt — i.e. total server-seconds of
  /// service delivered up to now.
  SimTime busy_time() const noexcept;

  /// Total time jobs spent waiting in queue (sum over jobs).
  SimTime total_wait_time() const noexcept { return total_wait_; }

  /// Mean utilization in [0, 1] over the window since construction/reset.
  double utilization() const noexcept;

  /// Reset statistics (not the queue/in-service jobs).
  void reset_stats() noexcept;

  /// Checkpoint image of the cumulative statistics. The accumulators are
  /// floating-point running sums, so restoring them bit-exactly (rather
  /// than replaying per-job additions in a different order) is what keeps
  /// `busy_time()` et al. bitwise identical after a resume.
  struct StatsImage {
    double busy_integral = 0.0;
    double total_wait = 0.0;
    double last_change = 0.0;
    double stats_epoch = 0.0;
    std::uint64_t completed = 0;
  };
  StatsImage stats_image() const noexcept {
    return StatsImage{busy_integral_, total_wait_, last_change_,
                      stats_epoch_, completed_};
  }
  /// Restore a checkpointed image onto an *idle* resource (no job in
  /// service, empty queue); throws std::logic_error otherwise.
  void restore_stats_image(const StatsImage& img);

 private:
  struct Job {
    SimTime service;
    SimTime enqueued_at;
    Callback done;
  };

  /// Completion trampoline: 12 bytes — always inline in a `sim::Task`.
  struct FinishFn {
    Resource* r;
    std::uint32_t slot;
    void operator()() const { r->on_finish(slot); }
  };

  void start(Job job);
  void on_finish(std::uint32_t slot);
  void account() noexcept;
  std::uint32_t park(Callback done);

  Simulator& sim_;
  std::string name_;
  std::uint32_t capacity_;
  std::uint32_t busy_ = 0;
  std::deque<Job> queue_;
  std::uint64_t completed_ = 0;

  // Slab of in-service completion callbacks, indexed by FinishFn::slot.
  std::vector<Callback> in_service_;
  std::vector<std::uint32_t> free_slots_;

  // Piecewise-constant busy integral.
  mutable SimTime busy_integral_ = 0.0;
  mutable SimTime last_change_ = 0.0;
  SimTime stats_epoch_ = 0.0;
  SimTime total_wait_ = 0.0;
};

/// An RSS-style N-queue resource: flows are hash-steered to one of N FIFO
/// queues, each served by its own share of the core budget.
///
/// Models the LIFL gateway's parallel ingest path (§4.2 + ROADMAP
/// "gateway-parallel ingest"): instead of one queue feeding `cores`
/// interchangeable servers, the NIC's receive-side-scaling hash pins each
/// client (flow) to a queue, queues are drained independently — so a hot
/// node's ingest scales with its configured core count while each client's
/// uploads stay in order — and one elephant flow can only ever occupy its
/// own queue. `queues == 1` degenerates to a plain `Resource` with
/// `cores` servers (the pre-RSS single-queue gateway), which keeps default
/// configurations bit-identical to the unsharded model.
///
/// Vertical scaling (`set_capacity`) re-derives the per-queue service rate
/// from the new core count: cores are dealt round-robin across the *live*
/// queue prefix (`min(queues, cores)` — fewer cores than queues narrows
/// the steering domain, exactly like reprogramming the RSS indirection
/// table). A queue dropped from the live set stops receiving new flows but
/// keeps one server until it has drained (its steered jobs must not
/// stall), so total capacity can transiently exceed the configured cores
/// during a scale-down; the surplus is reclaimed on the next
/// `set_capacity` once the queue is empty. Per-flow FIFO ordering is
/// guaranteed while the core count is stable; a rescale re-steers flows —
/// exactly as a real indirection-table rewrite does — and may transiently
/// reorder a flow whose earlier jobs still sit on a since-dropped queue.
class MultiQueueResource {
 public:
  /// `queues == 0` allocates one queue per core (full RSS fan-out); the
  /// effective queue count is clamped to [1, cores].
  MultiQueueResource(Simulator& sim, std::string name, std::uint32_t cores,
                     std::uint32_t queues = 1);
  MultiQueueResource(const MultiQueueResource&) = delete;
  MultiQueueResource& operator=(const MultiQueueResource&) = delete;

  /// Submit a job on behalf of `flow` (client / participant id): steered to
  /// queue hash(flow) % queues, FIFO within the queue.
  void acquire(std::uint64_t flow, SimTime service_time, Task on_complete) {
    queue_for(flow).acquire(service_time, std::move(on_complete));
  }

  /// The queue a flow steers to.
  Resource& queue_for(std::uint64_t flow) { return *queues_[steer(flow)]; }
  Resource& queue(std::size_t i) { return *queues_[i]; }
  std::size_t queue_count() const noexcept { return queues_.size(); }

  /// Vertical scaling (§4.2): redistribute `cores` across the live queue
  /// prefix and re-steer new flows to it (see class comment for the
  /// scale-down drain rule). `cores` is floored at 1.
  void set_capacity(std::uint32_t cores);

  const std::string& name() const noexcept { return name_; }
  /// Total cores across all queues.
  std::uint32_t capacity() const noexcept { return cores_; }

  // Aggregate statistics over all queues (same meaning as on `Resource`).
  std::uint32_t busy() const noexcept;
  std::size_t queue_length() const noexcept;
  std::uint64_t completed() const noexcept;
  SimTime busy_time() const noexcept;
  SimTime total_wait_time() const noexcept;
  double utilization() const noexcept;
  void reset_stats() noexcept;

  /// The steering hash (splitmix64 finalizer): exposed so tests and benches
  /// can predict queue assignment.
  static std::uint64_t mix(std::uint64_t flow) noexcept {
    flow += 0x9e3779b97f4a7c15ull;
    flow = (flow ^ (flow >> 30)) * 0xbf58476d1ce4e5b9ull;
    flow = (flow ^ (flow >> 27)) * 0x94d049bb133111ebull;
    return flow ^ (flow >> 31);
  }

 private:
  std::size_t steer(std::uint64_t flow) const noexcept {
    return static_cast<std::size_t>(mix(flow) % live_);
  }
  void distribute();

  Simulator& sim_;
  std::string name_;
  std::uint32_t cores_;
  std::size_t live_ = 1;  ///< steering domain: queues [0, live_)
  std::vector<std::unique_ptr<Resource>> queues_;
  SimTime stats_epoch_ = 0.0;
};

}  // namespace lifl::sim
