#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/sim/simulator.hpp"
#include "src/sim/time.hpp"

namespace lifl::sim {

/// A FIFO multi-server resource: up to `capacity` jobs in service, the rest
/// queued in arrival order.
///
/// Used to model every point of contention in the platform: a node's core
/// pool, the kernel network-processing budget (the contention behind Fig. 4),
/// the NIC wire, and the gateway's assigned cores (vertically scaled, §4.2).
/// Utilization and waiting statistics are tracked exactly (piecewise-constant
/// integrals), which the benches use for CPU-utilization figures.
class Resource {
 public:
  using Callback = std::function<void()>;

  Resource(Simulator& sim, std::string name, std::uint32_t capacity);
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Submit a job needing `service_time` seconds of a server; `on_complete`
  /// fires when the job finishes service. Zero-duration jobs still respect
  /// FIFO order.
  void acquire(SimTime service_time, Callback on_complete);

  /// Change the number of servers (vertical scaling). Growing starts queued
  /// jobs immediately; shrinking lets in-service jobs finish (no preemption).
  void set_capacity(std::uint32_t capacity);

  const std::string& name() const noexcept { return name_; }
  std::uint32_t capacity() const noexcept { return capacity_; }
  std::uint32_t busy() const noexcept { return busy_; }
  std::size_t queue_length() const noexcept { return queue_.size(); }

  /// Completed job count.
  std::uint64_t completed() const noexcept { return completed_; }

  /// Integral of (number of busy servers) dt — i.e. total server-seconds of
  /// service delivered up to now.
  SimTime busy_time() const noexcept;

  /// Total time jobs spent waiting in queue (sum over jobs).
  SimTime total_wait_time() const noexcept { return total_wait_; }

  /// Mean utilization in [0, 1] over the window since construction/reset.
  double utilization() const noexcept;

  /// Reset statistics (not the queue/in-service jobs).
  void reset_stats() noexcept;

 private:
  struct Job {
    SimTime service;
    SimTime enqueued_at;
    Callback done;
  };

  void start(Job job);
  void on_finish();
  void account() noexcept;

  Simulator& sim_;
  std::string name_;
  std::uint32_t capacity_;
  std::uint32_t busy_ = 0;
  std::deque<Job> queue_;
  std::uint64_t completed_ = 0;

  // Piecewise-constant busy integral.
  mutable SimTime busy_integral_ = 0.0;
  mutable SimTime last_change_ = 0.0;
  SimTime stats_epoch_ = 0.0;
  SimTime total_wait_ = 0.0;
};

}  // namespace lifl::sim
