#include "src/sim/cpu_accounting.hpp"

namespace lifl::sim {

std::string_view to_string(CostTag tag) noexcept {
  switch (tag) {
    case CostTag::kAggregator: return "aggregator";
    case CostTag::kGateway: return "gateway";
    case CostTag::kKernelNet: return "kernel_net";
    case CostTag::kSerialization: return "serialization";
    case CostTag::kSidecarContainer: return "sidecar_container";
    case CostTag::kSidecarEbpf: return "sidecar_ebpf";
    case CostTag::kBroker: return "broker";
    case CostTag::kStartup: return "startup";
    case CostTag::kTraining: return "training";
    case CostTag::kEvaluation: return "evaluation";
    case CostTag::kControlPlane: return "control_plane";
    case CostTag::kCheckpoint: return "checkpoint";
    case CostTag::kIdleReservation: return "idle_reservation";
    case CostTag::kCount: break;
  }
  return "unknown";
}

}  // namespace lifl::sim
