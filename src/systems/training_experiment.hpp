#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/fl/model_spec.hpp"
#include "src/ml/accuracy_model.hpp"
#include "src/sim/calibration.hpp"
#include "src/systems/aggregation_service.hpp"
#include "src/systems/system_config.hpp"
#include "src/workload/population.hpp"

namespace lifl::sys {

/// Configuration of an end-to-end FL training run (§6.2 workloads).
struct TrainingConfig {
  fl::ModelSpec model = fl::models::resnet18();
  std::size_t cluster_nodes = 5;        ///< nodes running aggregators
  std::size_t population = 2800;        ///< total clients (FedScale)
  std::size_t active_per_round = 120;   ///< simultaneously active clients
  bool mobile_clients = true;           ///< hibernate before training
  double base_train_secs = sim::calib::kTrainSecsResNet18;
  ml::AccuracyModel curve = ml::AccuracyModel::resnet18_femnist();
  double target_accuracy = 0.70;
  std::size_t max_rounds = 120;
  double max_hours = 6.0;
  double sample_period_secs = 60.0;     ///< time-series sampling (Fig. 10)
  /// Fraction of selected clients that fail before training; the selector's
  /// heartbeat detects and replaces them (over-provisioning resilience, §3).
  double dropout_rate = 0.0;
  double heartbeat_timeout_secs = 5.0;
  std::uint64_t seed = 42;
};

/// Per-round record (rows of Fig. 10(c)/(f); inputs to Fig. 9).
struct RoundRecord {
  std::uint32_t round = 0;
  double started_at = 0.0;
  double completed_at = 0.0;     ///< global model updated + evaluated
  double act = 0.0;              ///< aggregation completion time
  double cpu_secs = 0.0;         ///< service CPU burned this round
  double accuracy = 0.0;
  std::uint32_t created = 0;
  std::uint32_t reused = 0;
  std::size_t nodes_used = 0;
};

/// Full result of a training run.
struct TrainingResult {
  std::string system;
  std::vector<RoundRecord> rounds;
  std::vector<std::uint32_t> arrivals_per_min;             ///< Fig. 10(a)/(d)
  std::vector<std::pair<double, std::size_t>> active_aggs; ///< Fig. 10(b)/(e)
  double secs_to_target = -1.0;       ///< wall clock to target accuracy
  double cpu_hours_to_target = -1.0;  ///< cumulative CPU to target accuracy
  double wall_secs = 0.0;
  double cpu_hours_total = 0.0;
  double final_accuracy = 0.0;
  /// Client failures the selector's heartbeat tracking detected (§3).
  std::uint32_t failures_detected = 0;
};

/// Drives synchronous FedAvg rounds end to end on a given system design:
/// client selection -> placement -> hibernation + local training ->
/// uploads -> hierarchical aggregation -> eval -> next round. Reproduces
/// the Fig. 9 time/cost-to-accuracy and Fig. 10 time-series experiments.
class TrainingExperiment {
 public:
  TrainingExperiment(SystemConfig system, TrainingConfig cfg)
      : system_(std::move(system)), cfg_(std::move(cfg)) {}

  TrainingResult run();

 private:
  SystemConfig system_;
  TrainingConfig cfg_;
};

}  // namespace lifl::sys
