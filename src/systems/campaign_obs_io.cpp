#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/obs/obs.hpp"
#include "src/systems/sharded_campaign.hpp"

namespace lifl::sys {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  return f;
}

}  // namespace

void write_campaign_trace(const ShardedCampaignResult& result,
                          const std::string& path) {
  if (!result.obs || !result.obs->config().trace) {
    throw std::logic_error(
        "write_campaign_trace: the run was not traced (set cfg.obs.trace)");
  }
  FilePtr f = open_or_throw(path);
  result.obs->write_trace_json(f.get());
}

void write_campaign_metrics_jsonl(const ShardedCampaignResult& result,
                                  const std::string& path) {
  FilePtr fp = open_or_throw(path);
  std::FILE* f = fp.get();

  // One row per round (sync) / emitted model version (async).
  for (std::size_t i = 0; i < result.round_started_at.size(); ++i) {
    std::fprintf(
        f,
        "{\"type\": \"round\", \"round\": %zu, \"started_at\": %.9f, "
        "\"completed_at\": %.9f, \"secs\": %.9f, \"samples\": %llu, "
        "\"weight\": %.17g, \"spawned\": %llu, \"reused\": %llu, "
        "\"refolded\": %llu}\n",
        i + 1, result.round_started_at[i], result.round_completed_at[i],
        result.round_completed_at[i] - result.round_started_at[i],
        static_cast<unsigned long long>(result.round_samples[i]),
        result.round_weight[i],
        static_cast<unsigned long long>(
            i < result.round_spawned.size() ? result.round_spawned[i] : 0),
        static_cast<unsigned long long>(
            i < result.round_reused.size() ? result.round_reused[i] : 0),
        static_cast<unsigned long long>(
            i < result.round_refolded.size() ? result.round_refolded[i] : 0));
  }

  // One row per shard: the barrier-stall report.
  for (std::size_t s = 0; s < result.shard_windows.size(); ++s) {
    std::fprintf(f,
                 "{\"type\": \"shard\", \"shard\": %zu, \"windows\": %llu, "
                 "\"empty_windows\": %llu, \"idle_wall_secs\": %.6f}\n",
                 s,
                 static_cast<unsigned long long>(result.shard_windows[s]),
                 static_cast<unsigned long long>(
                     result.shard_empty_windows[s]),
                 result.shard_idle_secs[s]);
  }

  // Summary row: campaign totals, plus registry aggregates when the run
  // was metered and ring accounting when it was traced.
  std::fprintf(
      f,
      "{\"type\": \"summary\", \"rounds\": %zu, \"events\": %llu, "
      "\"cross_posts\": %llu, \"windows\": %llu, \"spawned_total\": %llu, "
      "\"reused_total\": %llu, \"replans\": %llu, \"sim_secs\": %.9f, "
      "\"wall_secs\": %.6f",
      result.round_started_at.size(),
      static_cast<unsigned long long>(result.events),
      static_cast<unsigned long long>(result.cross_posts),
      static_cast<unsigned long long>(result.windows),
      static_cast<unsigned long long>(result.spawned_total),
      static_cast<unsigned long long>(result.reused_total),
      static_cast<unsigned long long>(result.replans), result.sim_secs,
      result.wall_secs);
  if (result.obs) {
    const obs::CampaignObs& co = *result.obs;
    if (co.config().trace) {
      std::fprintf(
          f, ", \"trace_recorded\": %llu, \"trace_dropped\": %llu",
          static_cast<unsigned long long>(co.trace().recorded_events()),
          static_cast<unsigned long long>(co.trace().dropped_events()));
    }
    if (co.config().metrics) {
      const obs::Registry& reg = co.registry();
      std::fprintf(f, ", \"counters\": {");
      for (std::size_t i = 0; i < reg.counter_count(); ++i) {
        const obs::CounterId id{static_cast<std::uint32_t>(i)};
        std::fprintf(
            f, "%s\"%s\": %llu", i == 0 ? "" : ", ",
            reg.counter_name(id).c_str(),
            static_cast<unsigned long long>(reg.counter_total(id)));
      }
      std::fprintf(f, "}, \"hists\": {");
      for (std::size_t i = 0; i < reg.hist_count(); ++i) {
        const obs::HistId id{static_cast<std::uint32_t>(i)};
        const obs::Hist h = reg.hist_total(id);
        std::fprintf(f,
                     "%s\"%s\": {\"count\": %llu, \"sum\": %.9f, "
                     "\"mean\": %.9f, \"min\": %.9f, \"max\": %.9f}",
                     i == 0 ? "" : ", ", reg.hist_name(id).c_str(),
                     static_cast<unsigned long long>(h.count), h.sum,
                     h.mean(), h.count == 0 ? 0.0 : h.min,
                     h.count == 0 ? 0.0 : h.max);
      }
      std::fprintf(f, "}");
    }
  }
  std::fprintf(f, "}\n");
}

}  // namespace lifl::sys
