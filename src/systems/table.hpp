#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lifl::sys {

/// Minimal fixed-width table printer used by the benchmark harness to emit
/// the rows/series of each paper table and figure.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(const std::string& title = "") const {
    if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < r.size() ? r[c] : std::string{};
        std::printf("%-*s  ", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = headers_.size() * 2;
    for (auto w : width) total += w;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper.
inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace lifl::sys
