#include "src/systems/streaming_hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/sim/calibration.hpp"
#include "src/sim/periodic.hpp"

namespace lifl::sys {

namespace calib = sim::calib;

void apply_lifl_cold_start(fl::AggregatorRuntime::Config& cfg) {
  cfg.cold_trigger = fl::ColdStartTrigger::kOnStart;
  cfg.cold_start_secs = calib::kLiflColdStartSecs;
  cfg.cold_start_cycles = calib::kLiflColdStartCycles;
}

StreamingHierarchy::StreamingHierarchy(dp::DataPlane& plane,
                                       ctrl::CampaignPlanner& planner,
                                       Config cfg)
    : plane_(plane), planner_(planner), cfg_(std::move(cfg)) {}

StreamingHierarchy::~StreamingHierarchy() = default;

sim::Simulator& StreamingHierarchy::sim() {
  return plane_.cluster().sim();
}

std::unique_ptr<fl::AggregatorRuntime> StreamingHierarchy::acquire(
    fl::AggregatorRuntime::Config rc) {
  const std::uint32_t id = static_cast<std::uint32_t>(rc.id);
  if (!pool_.empty()) {
    // Warm reuse: re-arm in place — zero start-up cost, no registration of
    // a new sandbox. LIFO keeps the hottest instance hottest.
    auto rt = std::move(pool_.back());
    pool_.pop_back();
    rt->rearm(std::move(rc));
    ++round_.reused;
    ++total_.reused;
    cfg_.obs.instant(sim().now(), obs::Ev::kAggRearm, id);
    cfg_.obs.count_id(&obs::Ids::rearms);
    return rt;
  }
  if (cfg_.cold_start_spawns) apply_lifl_cold_start(rc);
  auto rt = std::make_unique<fl::AggregatorRuntime>(plane_, std::move(rc));
  rt->start();
  ++round_.spawned;
  ++total_.spawned;
  cfg_.obs.instant(sim().now(), obs::Ev::kAggSpawn, id);
  cfg_.obs.count_id(&obs::Ids::spawns);
  return rt;
}

void StreamingHierarchy::park(std::unique_ptr<fl::AggregatorRuntime> rt) {
  // Never destroyed here: park can run inside the runtime's own on_result
  // (a leaf self-parking after its final batch), where destruction would
  // free the object mid-callback. The pool is dropped only between rounds.
  pool_.push_back(std::move(rt));
}

std::uint64_t StreamingHierarchy::claim_batch() {
  const std::uint64_t left = target_ - claimed_;
  const std::uint64_t b = std::min<std::uint64_t>(cfg_.updates_per_leaf, left);
  claimed_ += b;
  if (claimed_ >= target_ && !sealed_) {
    sealed_ = true;
    seal_middles();
  }
  return b;
}

std::size_t StreamingHierarchy::assign_parent(std::uint64_t n) {
  // Once the round's batches are fully assigned the middles are sealed, so
  // any claim resurrected by a retiring leaf's release routes straight to
  // the relay (its folded-count goal absorbs either path).
  if (middles_.empty() || sealed_) return kNoMiddle;
  const std::size_t m = rr_++ % middles_.size();
  middles_[m].assigned += n;
  return m;
}

void StreamingHierarchy::seal_middles() {
  for (auto& m : middles_) {
    // Seal at the updates actually routed through it; a middle that was
    // never assigned anything keeps goal 0 and simply never sends.
    m.rt->set_goal(static_cast<std::uint32_t>(m.assigned), /*open=*/false);
  }
  if (!middles_.empty()) {
    cfg_.obs.instant(sim().now(), obs::Ev::kAggSeal,
                     static_cast<std::uint32_t>(middles_.size()), claimed_);
    cfg_.obs.count_id(&obs::Ids::seals);
  }
}

fl::AggregatorRuntime::Config StreamingHierarchy::leaf_config(
    const LeafSlot& s) {
  fl::AggregatorRuntime::Config lc;
  lc.id = leaf_id(s);
  lc.node = cfg_.node;
  lc.role = fl::AggRole::kLeaf;
  lc.timing = cfg_.leaf_timing;
  lc.goal = static_cast<std::uint32_t>(s.batch);
  lc.goal_kind = fl::GoalKind::kMessages;
  lc.result_bytes = cfg_.result_bytes;
  lc.pull_from_pool = true;
  // Sync rounds gate on the round's version; async buffers accept any
  // version and discount it by staleness against the live server version.
  lc.expected_version = round_num_;
  if (cfg_.async) lc.live_version = cfg_.live_version;
  LeafSlot* sp = const_cast<LeafSlot*>(&s);
  lc.on_result = [this, sp](fl::ModelUpdate u) {
    on_leaf_batch(sp, std::move(u));
  };
  if (cfg_.faults != nullptr && cfg_.faults->enabled()) {
    lc.leased = true;
    // One draw per arming, in group-local event order: replacements get a
    // fresh draw too (a recovered leaf can crash again).
    const std::uint32_t k = cfg_.faults->leaf_crash_point(
        cfg_.group, round_num_, fault_seq_++, s.batch);
    if (k > 0) {
      lc.fail_after_folds = k;
      lc.on_failed = [this, sp] { recover_leaf(sp); };
    }
  }
  return lc;
}

fl::AggregatorRuntime::Config StreamingHierarchy::middle_config(
    fl::ParticipantId id, std::size_t mi) {
  fl::AggregatorRuntime::Config mc;
  mc.id = id;
  mc.node = cfg_.node;
  mc.role = fl::AggRole::kMiddle;
  mc.timing = fl::AggTiming::kEager;
  mc.goal = 0;
  mc.goal_open = true;
  mc.goal_kind = fl::GoalKind::kFoldedUpdates;
  mc.consumer = cfg_.relay_id;
  mc.result_bytes = cfg_.result_bytes;
  mc.expected_version = round_num_;
  if (cfg_.faults != nullptr && cfg_.faults->enabled()) {
    mc.leased = true;
    // The crash lands after k folded leaf partials; the planner's fan-in
    // is the expected message count of the arming.
    const std::uint32_t k = cfg_.faults->middle_crash_point(
        cfg_.group, round_num_, fault_seq_++, planner_.config().middle_fanin);
    if (k > 0) {
      mc.fail_after_folds = k;
      mc.on_failed = [this, mi] { recover_middle(mi); };
    }
  }
  return mc;
}

bool StreamingHierarchy::activate_leaf() {
  const std::uint64_t b = claim_batch();
  if (b == 0) return false;
  LeafSlot* s = nullptr;
  for (auto& slot : slots_) {
    if (!slot->rt) {
      s = slot.get();
      break;
    }
  }
  if (s == nullptr) {
    slots_.push_back(std::make_unique<LeafSlot>());
    s = slots_.back().get();
    s->idx = slots_.size() - 1;
  }
  s->batch = b;
  s->middle = assign_parent(b);
  s->retiring = false;
  s->rt = acquire(leaf_config(*s));
  arm_leaf_deadline(*s);
  cfg_.obs.instant(sim().now(), obs::Ev::kAggClaim,
                   static_cast<std::uint32_t>(leaf_id(*s)), b);
  cfg_.obs.count_id(&obs::Ids::claims);
  ++active_;
  round_.peak_leaves = std::max(round_.peak_leaves, active_);
  total_.peak_leaves = std::max(total_.peak_leaves, active_);
  return true;
}

std::uint32_t StreamingHierarchy::relay_flush() const {
  if (cfg_.flush_updates > 0) return cfg_.flush_updates;
  return std::max<std::uint32_t>(
      1, planner_.config().middle_fanin * cfg_.updates_per_leaf);
}

double StreamingHierarchy::leaf_deadline_secs() const {
  const double cap = cfg_.seal_deadline_secs;
  if (!cfg_.adaptive_deadline || cap <= 0.0 || cfg_.replan_interval <= 0.0 ||
      !planner_.estimate_initialized(cfg_.group)) {
    return cap;  // fixed deadline until the arrival EWMA has a signal
  }
  // Per-group arrival rate from the EWMA the re-plan pulse feeds (updates
  // per sample window). The expected fill time of one leaf buffer is
  // batch / (rate / active leaves); give it 2x slack, keep the configured
  // deadline as the upper clamp (and a tenth of it as the lower), so a hot
  // stream seals laggard buffers quickly while a trickle still gets the
  // full window.
  const double rate = planner_.estimate(cfg_.group) / cfg_.replan_interval;
  if (rate <= 0.0) return cap;
  const double leaves = static_cast<double>(std::max<std::uint32_t>(
      1, active_));
  const double fill = 2.0 * static_cast<double>(cfg_.updates_per_leaf) *
                      leaves / rate;
  return std::clamp(fill, 0.1 * cap, cap);
}

void StreamingHierarchy::arm_leaf_deadline(LeafSlot& s) {
  ++s.gen;  // invalidates any timer of the previous activation
  if (!cfg_.async || cfg_.seal_deadline_secs <= 0.0) return;
  LeafSlot* sp = &s;
  const std::uint64_t gen = s.gen;
  sim().schedule_after(leaf_deadline_secs(),
                       [this, sp, gen] { flush_leaf(sp, gen); });
}

void StreamingHierarchy::flush_leaf(LeafSlot* s, std::uint64_t gen) {
  // Slot pointers are stable (slots_ holds unique_ptrs); a timer from a
  // superseded activation — the leaf completed and re-armed, retired, or
  // parked — recognizes itself by generation/state and dies, which is also
  // what lets the event chain drain once the stream is over.
  if (relay_done_ || !s->rt || s->retiring || s->gen != gen) return;
  const std::uint32_t have = s->rt->received();
  if (have == 0) {
    // Empty buffer: nothing to seal; push the deadline back.
    sim().schedule_after(leaf_deadline_secs(),
                         [this, s, gen] { flush_leaf(s, gen); });
    return;
  }
  if (have >= s->batch) return;  // full — the count seal is already firing
  // Seal on deadline: release the unfilled remainder of the claim (for
  // this or any other leaf to re-claim) and force the partial buffer out.
  // Same drain path as a shrink-retire, but the leaf stays active and
  // re-claims in on_leaf_batch.
  const std::uint64_t unfilled = s->batch - have;
  claimed_ -= unfilled;
  s->batch = have;
  ++round_.drains;
  ++total_.drains;
  cfg_.obs.instant(sim().now(), obs::Ev::kAggDrain,
                   static_cast<std::uint32_t>(leaf_id(*s)), have);
  cfg_.obs.count_id(&obs::Ids::drains);
  s->rt->drain();
}

void StreamingHierarchy::retire_leaf(LeafSlot& s) {
  s.retiring = true;
  --active_;
  // Seal the leaf at the updates it already accepted: the partial
  // accumulator drains into its parent (on_leaf_batch forwards it when the
  // forced Send fires), and the unfilled remainder of its claim is
  // released for surviving leaves to re-claim — nothing is lost.
  const std::uint32_t have = s.rt->received();
  const std::uint64_t unfilled = s.batch - have;
  claimed_ -= unfilled;
  if (unfilled > 0 && s.middle != kNoMiddle) {
    Middle& m = middles_[s.middle];
    m.assigned -= unfilled;
    if (sealed_) {
      m.rt->set_goal(static_cast<std::uint32_t>(m.assigned), /*open=*/false);
    }
  }
  s.batch = have;
  if (have == 0) {
    park_leaf(s);
  } else if (unfilled > 0) {
    ++round_.drains;
    ++total_.drains;
    cfg_.obs.instant(sim().now(), obs::Ev::kAggDrain,
                     static_cast<std::uint32_t>(leaf_id(s)), have);
    cfg_.obs.count_id(&obs::Ids::drains);
    s.rt->drain();  // may complete (and park via on_leaf_batch) synchronously
  }
  // else: the batch is fully received and mid-fold — it completes through
  // the normal path and parks (retiring) in on_leaf_batch; nothing drained.
  // A release with no survivor to re-claim it would stall the round: wake a
  // mop-up leaf from the pool. Suppressed during a quorum seal's mass
  // retire — the released remainder is being abandoned, not re-claimed.
  if (!quorum_sealed_ && active_ == 0 && claimed_ < target_) activate_leaf();
}

void StreamingHierarchy::park_leaf(LeafSlot& s) {
  s.rt->stop();
  park(std::move(s.rt));
}

void StreamingHierarchy::on_leaf_batch(LeafSlot* s, fl::ModelUpdate u) {
  if (cfg_.obs.tracing() || cfg_.obs.metering()) {
    // Fold span: first arrival into this batch -> the batch completing.
    const double t1 = sim().now();
    const double first = s->rt->first_arrival_at();
    const double t0 = first >= 0.0 ? first : t1;
    cfg_.obs.span(t0, t1, obs::Ev::kAggFold,
                  static_cast<std::uint32_t>(leaf_id(*s)), s->batch);
    cfg_.obs.count_id(&obs::Ids::folds);
    cfg_.obs.observe_id(&obs::Ids::fold_secs, t1 - t0);
  }
  const fl::ParticipantId parent =
      s->middle == kNoMiddle ? cfg_.relay_id : middles_[s->middle].id;
  plane_.send(leaf_id(*s), cfg_.node, parent, std::move(u));
  if (s->retiring) {
    park_leaf(*s);
    return;
  }
  const std::uint64_t b = claim_batch();
  if (b == 0) {
    // The round's work is fully claimed: park into the warm pool for the
    // next round (or a mid-round grow).
    --active_;
    park_leaf(*s);
    return;
  }
  s->batch = b;
  s->middle = assign_parent(b);
  s->rt->rearm(leaf_config(*s));  // streaming self-re-arm: same warm sandbox
  arm_leaf_deadline(*s);
  cfg_.obs.instant(sim().now(), obs::Ev::kAggClaim,
                   static_cast<std::uint32_t>(leaf_id(*s)), b);
  cfg_.obs.count_id(&obs::Ids::claims);
}

void StreamingHierarchy::apply_leaf_target(std::uint32_t target) {
  if (relay_done_) return;
  if (claimed_ < target_) target = std::max(target, 1u);
  if (target == active_) return;
  ++round_.replans;
  ++total_.replans;
  cfg_.obs.instant(sim().now(), obs::Ev::kReplan, active_, target);
  cfg_.obs.count_id(&obs::Ids::replans);
  if (target > active_) {
    while (active_ < target && activate_leaf()) {
    }
  } else {
    std::uint32_t excess = active_ - target;
    // Retire from the top of the slot range so low slots stay the stable
    // long-lived leaves.
    for (std::size_t i = slots_.size(); i-- > 0 && excess > 0;) {
      LeafSlot& s = *slots_[i];
      if (s.rt && !s.retiring) {
        retire_leaf(s);
        --excess;
      }
    }
  }
  planner_.set_current(cfg_.group, active_);
}

bool StreamingHierarchy::sampler_tick() {
  if (relay_done_) return false;
  auto& pool = plane_.env(cfg_.node).pool;
  const std::uint64_t pushed = pool.total_pushed();
  const double arrivals = static_cast<double>(pushed - last_pushed_);
  last_pushed_ = pushed;
  // Pending estimate: what is queued plus what arrived over the sample
  // window (with eager pull leaves the queue itself stays near zero — the
  // arrival flux is the §5.2 "pending updates" signal here). The EWMA is
  // fed every window even after the round's batches are fully assigned:
  // the carried estimate is what sizes the *next* round's initial tree at
  // the coordinator barrier.
  const double backlog = static_cast<double>(pool.depth()) + arrivals;
  const auto t = planner_.replan(cfg_.group, backlog);
  if (t.has_value() && !sealed_) apply_leaf_target(*t);
  return !relay_done_;
}

void StreamingHierarchy::recover_leaf(LeafSlot* s) {
  ++round_.leaf_crashes;
  ++total_.leaf_crashes;
  cfg_.obs.instant(sim().now(), obs::Ev::kAggCrash,
                   static_cast<std::uint32_t>(leaf_id(*s)));
  cfg_.obs.count_id(&obs::Ids::crashes);
  auto& pool = plane_.env(cfg_.node).pool;
  // Abort the dead instance's leases: every client update it accepted but
  // never emitted comes back, in acceptance order.
  std::vector<fl::ModelUpdate> lost = pool.lease_abort(leaf_id(*s));
  round_.refolded += lost.size();
  total_.refolded += lost.size();
  cfg_.obs.count_id(&obs::Ids::refolds, lost.size());
  // The corpse cannot be destroyed here — we are inside its crash
  // callback — so it waits in the graveyard until the round ends.
  graveyard_.push_back(std::move(s->rt));
  // Replacement under the same id and the same (possibly sealed-down)
  // batch goal: a warm re-arm when the pool has a sandbox, else a cold
  // spawn — the recovery latency the round actually pays. In-flight sends
  // to the leaf's id resolve their route at delivery time and reach it.
  const bool cold = pool_.empty();
  s->rt = acquire(leaf_config(*s));
  if (cold && cfg_.cold_start_spawns) {
    round_.recovery_secs += calib::kLiflColdStartSecs;
    total_.recovery_secs += calib::kLiflColdStartSecs;
  }
  arm_leaf_deadline(*s);
  cfg_.obs.instant(sim().now(), obs::Ev::kAggRecover,
                   static_cast<std::uint32_t>(leaf_id(*s)), lost.size());
  cfg_.obs.count_id(&obs::Ids::recoveries);
  // Re-queue the recovered updates: the replacement's pool pulls (or any
  // other live leaf's) re-claim and re-fold them — zero samples lost.
  for (auto& u : lost) pool.push(std::move(u));
}

void StreamingHierarchy::recover_middle(std::size_t mi) {
  ++round_.middle_crashes;
  ++total_.middle_crashes;
  Middle& m = middles_[mi];
  cfg_.obs.instant(sim().now(), obs::Ev::kAggCrash,
                   static_cast<std::uint32_t>(m.id));
  cfg_.obs.count_id(&obs::Ids::crashes);
  auto& pool = plane_.env(cfg_.node).pool;
  std::vector<fl::ModelUpdate> lost = pool.lease_abort(m.id);
  round_.reinjected += lost.size();
  total_.reinjected += lost.size();
  graveyard_.push_back(std::move(m.rt));
  // Rebuild with the goal state the round has reached: still open while
  // batches are being assigned, sealed at the routed count afterwards.
  fl::AggregatorRuntime::Config mc = middle_config(m.id, mi);
  if (sealed_) {
    mc.goal = static_cast<std::uint32_t>(m.assigned);
    mc.goal_open = false;
  }
  const bool cold = pool_.empty();
  m.rt = acquire(std::move(mc));
  if (cold && cfg_.cold_start_spawns) {
    round_.recovery_secs += calib::kLiflColdStartSecs;
    total_.recovery_secs += calib::kLiflColdStartSecs;
  }
  cfg_.obs.instant(sim().now(), obs::Ev::kAggRecover,
                   static_cast<std::uint32_t>(m.id), lost.size());
  cfg_.obs.count_id(&obs::Ids::recoveries);
  // Re-inject the retained leaf partials directly: they are folded
  // *messages* of this middle, not pool entries — routing them through the
  // group pool would hand whole partials to message-counting leaves.
  for (auto& u : lost) m.rt->inject(std::move(u));
}

void StreamingHierarchy::quorum_check(std::uint32_t round) {
  if (round != round_num_ || relay_done_ || quorum_sealed_) return;
  const auto& pool = plane_.env(cfg_.node).pool;
  // Client uploads that reached the group this round: pushes since the
  // round epoch, minus recovery re-pushes (re-folds, not fresh arrivals).
  const std::uint64_t pushed = pool.total_pushed() - round_base_pushed_;
  const std::uint64_t arrived =
      pushed > round_.refolded ? pushed - round_.refolded : 0;
  const auto quorum_target = static_cast<std::uint64_t>(
      std::ceil(cfg_.quorum * static_cast<double>(target_)));
  if (arrived >= quorum_target) {
    seal_quorum();
    return;
  }
  // Deadline passed but the quorum itself has not arrived yet: keep
  // waiting for it, probing at an eighth of the deadline.
  sim().schedule_after(cfg_.round_deadline_secs / 8.0,
                       [this, round] { quorum_check(round); });
}

void StreamingHierarchy::seal_quorum() {
  quorum_sealed_ = true;
  ++round_.quorum_seals;
  ++total_.quorum_seals;
  // Retire every active leaf: partial buffers drain upward, unfilled
  // claims release and stay released (the mop-up reactivation is
  // suppressed) — the round finishes with what it has.
  for (auto& s : slots_) {
    if (s->rt && !s->retiring) retire_leaf(*s);
  }
  const std::uint64_t abandoned = target_ - claimed_;
  round_.quorum_abandoned += abandoned;
  total_.quorum_abandoned += abandoned;
  cfg_.obs.instant(sim().now(), obs::Ev::kQuorumSeal, round_num_, abandoned);
  cfg_.obs.count_id(&obs::Ids::quorum_seals);
  target_ = claimed_;
  if (!sealed_) {
    sealed_ = true;
    seal_middles();
  }
  if (claimed_ == 0) {
    relay_done_ = true;  // nothing ever arrived: the group sits the round out
  } else if (relay_) {
    relay_->set_goal(static_cast<std::uint32_t>(target_), /*open=*/false);
  }
  // Abandoned stragglers that do land later sit in the pool and fall to
  // the next round's leaves, whose version gate drops them (with a
  // replacement pull), so they cannot wedge future rounds.
  if (abandoned > 0 && cfg_.on_quorum_shortfall) {
    cfg_.on_quorum_shortfall(abandoned);
  }
  planner_.set_current(cfg_.group, active_);
}

void StreamingHierarchy::begin_round(std::uint32_t round,
                                     std::uint64_t target,
                                     const ctrl::GroupPlan& plan,
                                     double epoch) {
  const double anchor = epoch >= 0.0 ? epoch : sim().now();
  round_num_ = round;
  target_ = target;
  claimed_ = 0;
  forwarded_ = 0;
  sealed_ = false;
  relay_done_ = false;
  quorum_sealed_ = false;
  rr_ = 0;
  round_ = Stats{};
  // Round-local fault draws: replaying this round from its boundary
  // re-derives the identical crash schedule.
  fault_seq_ = 0;
  graveyard_.clear();  // last round's corpses are safe to reclaim now
  if (!cfg_.reuse) pool_.clear();  // churn baseline: nothing stays warm
  auto& pool = plane_.env(cfg_.node).pool;
  // Waiters left by drained leaves of earlier rounds are dead (their ctx
  // was invalidated at park); clear them so pushes wake live leaves first.
  pool.clear_waiters();
  last_pushed_ = pool.total_pushed();
  round_base_pushed_ = pool.total_pushed();
  if (target == 0) {
    relay_done_ = true;  // nothing to aggregate: the group sits the round out
    planner_.set_current(cfg_.group, 0);
    return;
  }

  // ---- relay: one per group, folded-count goal == the round target, so it
  // completes exactly when every client update arrived through any tree.
  fl::AggregatorRuntime::Config rc;
  rc.id = cfg_.relay_id;
  rc.node = cfg_.node;
  rc.role = fl::AggRole::kMiddle;
  rc.timing = fl::AggTiming::kEager;
  rc.goal = static_cast<std::uint32_t>(target);
  rc.goal_kind = fl::GoalKind::kFoldedUpdates;
  rc.result_bytes = cfg_.result_bytes;
  rc.expected_version = round;
  rc.on_result = [this](fl::ModelUpdate u) {
    relay_done_ = true;
    if (cfg_.on_relay_result) cfg_.on_relay_result(std::move(u));
  };
  relay_ = acquire(std::move(rc));

  // ---- middles: open folded-count goals, sealed at claim exhaustion.
  middles_.clear();
  for (std::uint32_t m = 0; m < plan.middles; ++m) {
    Middle mid;
    mid.id = cfg_.middle_base + m;
    mid.rt = acquire(middle_config(mid.id, middles_.size()));
    middles_.push_back(std::move(mid));
  }

  // ---- initial leaf set per the round-boundary plan.
  const std::uint32_t initial = std::max<std::uint32_t>(1, plan.leaves);
  while (active_ < initial && activate_leaf()) {
  }
  planner_.set_current(cfg_.group, active_);

  // ---- mid-round re-planning: a deterministic group-local pulse; it ends
  // itself once the group's relay completed, so it cannot keep the
  // simulation alive past the round.
  if (cfg_.replan_interval > 0.0 && !relay_done_) {
    sim::schedule_every(sim(), anchor + cfg_.replan_interval,
                        cfg_.replan_interval,
                        [this] { return sampler_tick(); });
  }

  // ---- graceful degradation: after the round deadline, seal at quorum
  // instead of stalling on stragglers. The probe carries the round number
  // so one left over from an early-finishing round dies harmlessly.
  if (cfg_.quorum < 1.0 && cfg_.round_deadline_secs > 0.0 && !relay_done_) {
    const std::uint32_t r = round_num_;
    sim().schedule_at(anchor + cfg_.round_deadline_secs,
                      [this, r] { quorum_check(r); });
  }
}

void StreamingHierarchy::begin_stream(std::uint64_t target,
                                      const ctrl::GroupPlan& plan,
                                      double epoch) {
  const double anchor = epoch >= 0.0 ? epoch : sim().now();
  round_num_ = 0;  // async: no round — leaf configs accept any version
  target_ = target;
  claimed_ = 0;
  forwarded_ = 0;
  sealed_ = false;
  relay_done_ = false;
  quorum_sealed_ = false;
  rr_ = 0;
  round_ = Stats{};
  fault_seq_ = 0;  // stream-local: replay re-derives the crash schedule
  graveyard_.clear();
  auto& pool = plane_.env(cfg_.node).pool;
  pool.clear_waiters();
  last_pushed_ = pool.total_pushed();
  round_base_pushed_ = pool.total_pushed();
  if (target == 0) {
    relay_done_ = true;
    planner_.set_current(cfg_.group, 0);
    return;
  }

  // ---- relay: a recurring FedBuff forwarder. It folds leaf partials and
  // flushes upward every relay_flush() folded client updates, re-targeting
  // the remainder at the tail, so the top receives a continuous stream of
  // partial aggregates — the group never waits for a round barrier. The
  // folded-count goal keeps the total invariant under every tree shape
  // and deadline seal below it.
  fl::AggregatorRuntime::Config rc;
  rc.id = cfg_.relay_id;
  rc.node = cfg_.node;
  rc.role = fl::AggRole::kMiddle;
  rc.timing = fl::AggTiming::kEager;
  rc.goal = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(relay_flush(), target));
  rc.goal_kind = fl::GoalKind::kFoldedUpdates;
  rc.recurring = true;
  rc.result_bytes = cfg_.result_bytes;
  rc.on_result = [this](fl::ModelUpdate u) {
    forwarded_ += u.updates_folded;
    const std::uint64_t left =
        target_ - std::min<std::uint64_t>(forwarded_, target_);
    if (cfg_.on_relay_result) cfg_.on_relay_result(std::move(u));
    if (left == 0) {
      relay_done_ = true;  // every update of the stream has been forwarded
    } else {
      relay_->set_goal(static_cast<std::uint32_t>(
          std::min<std::uint64_t>(relay_flush(), left)));
    }
  };
  relay_ = acquire(std::move(rc));

  // ---- leaves: the same claim machinery as a round (so warm parking,
  // mid-stream re-planning and drains all apply), but each activation is a
  // FedBuff buffer — count goal of one batch, deadline seal, staleness
  // weighting. No middle level: partial batches flush continuously, so a
  // middle's batch boundary would add latency for no fan-in relief.
  middles_.clear();
  const std::uint32_t initial = std::max<std::uint32_t>(1, plan.leaves);
  while (active_ < initial && activate_leaf()) {
  }
  planner_.set_current(cfg_.group, active_);

  // ---- buffer-pressure re-planning: same deterministic group-local pulse
  // as a round; the sampled signal (pool depth + arrival flux) *is* the
  // leaf-buffer pressure here.
  if (cfg_.replan_interval > 0.0 && !relay_done_) {
    sim::schedule_every(sim(), anchor + cfg_.replan_interval,
                        cfg_.replan_interval,
                        [this] { return sampler_tick(); });
  }
}

void StreamingHierarchy::restore_warm(std::size_t pool_n, std::size_t slot_n,
                                      const Stats& total) {
  if (relay_ || !middles_.empty() || !slots_.empty() || !pool_.empty()) {
    throw std::logic_error(
        "StreamingHierarchy::restore_warm: engine is not fresh");
  }
  for (std::size_t i = 0; i < pool_n; ++i) {
    // A warm sandbox with no role: never started, so nothing registers and
    // no cold start runs — `rearm` gives it its first real config, exactly
    // like a parked instance from an earlier round.
    fl::AggregatorRuntime::Config pc;
    pc.id = cfg_.leaf_base + i;
    pc.node = cfg_.node;
    pc.goal = 1;
    pool_.push_back(
        std::make_unique<fl::AggregatorRuntime>(plane_, std::move(pc)));
  }
  for (std::size_t i = 0; i < slot_n; ++i) {
    slots_.push_back(std::make_unique<LeafSlot>());
    slots_.back()->idx = i;
  }
  total_ = total;
}

void StreamingHierarchy::end_round() {
  for (auto& m : middles_) {
    if (m.rt) {
      m.rt->stop();
      park(std::move(m.rt));
    }
  }
  middles_.clear();
  for (auto& s : slots_) {
    if (s->rt) {
      if (!s->retiring) --active_;
      park_leaf(*s);
    }
  }
  if (relay_) {
    relay_->stop();
    park(std::move(relay_));
  }
  // Crashed sandboxes: safe to reclaim now — the round is over, so no
  // event on the calendar can still hold their callbacks' context alive
  // in a way that dereferences them (ctx->rt was nulled at fail()).
  graveyard_.clear();
  if (!cfg_.reuse) pool_.clear();
}

}  // namespace lifl::sys
