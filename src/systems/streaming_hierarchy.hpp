#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/control/campaign_planner.hpp"
#include "src/dataplane/dataplane.hpp"
#include "src/fl/aggregator_runtime.hpp"
#include "src/obs/obs.hpp"
#include "src/sim/fault_plan.hpp"
#include "src/sim/time.hpp"

namespace lifl::sys {

/// Stamp the LIFL function cold-start model onto a to-be-spawned runtime
/// config. The single definition both campaign modes use, so the fixed
/// baseline and the orchestrator always model the identical spawn cost —
/// the A/B `bench/micro_hierarchy_replan` gates on.
void apply_lifl_cold_start(fl::AggregatorRuntime::Config& cfg);

/// Per-group engine of the streaming hierarchy orchestrator: owns a warm
/// pool of `AggregatorRuntime`s and runs the planner-driven multi-level
/// tree (leaf → middle → group relay) of one node group, for one round at
/// a time, with mid-round re-planning and cross-round instance reuse.
///
/// Lifecycle per round (plan → arm → stream → re-plan):
///  - **plan**: the coordinator sizes the group's tree from the planner's
///    smoothed estimate at the round barrier (`begin_round` takes the
///    GroupPlan);
///  - **arm**: relay, middles and the initial leaf set are re-armed from
///    the warm pool (`rearm`: zero start-up cost); only a pool miss spawns
///    a new runtime, paying the LIFL cold start;
///  - **stream**: each leaf *claims* a batch of up to `updates_per_leaf`
///    client updates from the round target, pulls them off the group pool,
///    sends the partial aggregate to its parent, and re-arms itself for
///    the next batch — one warm instance folds many batches per round. The
///    relay counts **folded client updates** (GoalKind::kFoldedUpdates), so
///    it completes exactly when every one of the round's `target` updates
///    has been folded through *any* shape of tree — the invariant that
///    makes re-planning lossless;
///  - **re-plan**: a deterministic, group-local periodic pulse samples the
///    pool backlog, feeds the planner's EWMA, and applies leaf-target
///    changes through the hysteresis band: growth activates parked leaves
///    (claiming fresh batches), shrink *drains* retiring leaves — their
///    partial accumulators are sealed and sent to their parent, the
///    unfilled remainder of their claim is released for survivors to
///    re-claim, and no update is lost.
///
/// **Asynchronous streams** (`begin_stream`, campaign mode kAsync) reuse
/// the identical machinery with the round barrier removed: the target is
/// the whole campaign's update stream, leaves are FedBuff buffers that
/// seal on count or deadline and fold with FedAsync staleness weights
/// against the group's server-version slot, and the relay forwards partial
/// aggregates continuously (a recurring runtime) instead of waiting for
/// the full round. Re-planning samples buffer pressure (queued updates +
/// arrival flux) with the same EWMA/hysteresis rule.
///
/// Every decision is made in group-local event order (the planner slot,
/// the pool, the claims), so results are bitwise identical for any shard
/// count, and the *final model* is invariant under the number of re-plans.
class StreamingHierarchy {
 public:
  struct Config {
    std::size_t group = 0;       ///< planner slot this engine owns
    sim::NodeId node = 0;        ///< the group's (single) worker node
    fl::ParticipantId relay_id = 2;
    fl::ParticipantId middle_base = 100;
    fl::ParticipantId leaf_base = 1000;
    std::uint32_t updates_per_leaf = sim::calib::kUpdatesPerLeaf;  ///< I
    fl::AggTiming leaf_timing = fl::AggTiming::kEager;
    std::size_t result_bytes = 0;   ///< wire size of intermediate updates
    bool reuse = true;           ///< warm cross-round reuse (false: the
                                 ///< churn baseline — pool dropped between
                                 ///< rounds, every round spawns cold)
    /// Mid-round re-plan period in simulated seconds (0 disables; the
    /// initial plan then holds for the whole round).
    double replan_interval = 0.0;
    /// Spawned instances pay the LIFL function cold start; re-armed warm
    /// instances never do.
    bool cold_start_spawns = true;
    /// Sink for the relay's round aggregate (the group's one cross-group
    /// message; the campaign posts it to the top aggregator's shard). In
    /// async mode it fires once per relay *flush* instead of once per
    /// round.
    fl::AggregatorRuntime::ResultFn on_relay_result;

    // ---- asynchronous streaming (`begin_stream`) -------------------------
    /// Run FedBuff-style buffers instead of a synchronous round: leaves
    /// accept any model version (staleness-weighted via `live_version`),
    /// seal on count or on `seal_deadline_secs`, and the relay becomes a
    /// recurring forwarder flushing every `flush_updates` folded updates.
    bool async = false;
    /// Leaf-buffer seal deadline in simulated seconds (0 = seal on count
    /// only). A buffer that holds at least one update for this long is
    /// force-sealed (`drain`) so stragglers cannot pin a partial batch.
    double seal_deadline_secs = 0.0;
    /// Relay flush threshold in folded client updates (0 = one middle's
    /// worth: planner middle_fanin × updates_per_leaf).
    std::uint32_t flush_updates = 0;
    /// The group's server-version slot (planner `version_ptr`): wired into
    /// leaf configs so folds are discounted by staleness.
    const std::uint32_t* live_version = nullptr;
    /// Adaptive seal deadlines: size each buffer's deadline from the
    /// planner's arrival EWMA — the expected time for this leaf to fill its
    /// batch at the current per-leaf arrival rate, with 2x slack — instead
    /// of the fixed `seal_deadline_secs`, which then acts as the upper
    /// clamp (lower clamp: a tenth of it). Until the EWMA initializes the
    /// fixed deadline applies. Group-local and deterministic.
    bool adaptive_deadline = false;

    // ---- fault domain ----------------------------------------------------
    /// Deterministic fault schedule (null = fault-free). When set, every
    /// aggregator consumes under lease semantics and each leaf/middle
    /// arming draws a crash point from the plan; a crashed instance is
    /// replaced from the warm pool and its un-acked claims are re-folded
    /// (leaves: aborted leases re-queue to the group pool; middles: the
    /// retained leaf partials re-inject into the replacement).
    const sim::FaultPlan* faults = nullptr;
    /// Graceful degradation for synchronous rounds: after
    /// `round_deadline_secs` the round seals at this fraction of its target
    /// instead of stalling on stragglers (1.0 = wait for everything).
    /// Active leaves drain their partial buffers upward, unclaimed work is
    /// abandoned (reported via `on_quorum_shortfall` so the campaign can
    /// shrink the top goal), and late uploads fall through to the next
    /// round's stale-drop path. Async buffers already force-seal.
    double quorum = 1.0;
    /// Round deadline (simulated seconds past the round epoch) after which
    /// quorum sealing may fire; progress is re-checked periodically until
    /// the quorum is met or the round finishes. 0 disables.
    double round_deadline_secs = 0.0;
    /// Fired when a quorum seal abandons part of the round target, with the
    /// number of abandoned client updates (the campaign shrinks the top
    /// aggregator's folded-count goal by it).
    std::function<void(std::uint64_t)> on_quorum_shortfall;

    // ---- observability ---------------------------------------------------
    /// Passive trace/metrics handle for this group (default: disabled —
    /// every emit is a single branch). Recording never schedules events,
    /// so traced runs stay bitwise identical to untraced ones.
    obs::GroupObs obs;
  };

  /// Spawn/reuse/re-plan accounting; `round_stats` resets at begin_round.
  struct Stats {
    std::uint64_t spawned = 0;   ///< runtimes constructed (cold)
    std::uint64_t reused = 0;    ///< runtimes re-armed warm (activations
                                 ///< from the pool; per-batch self-re-arms
                                 ///< are streaming, not reuse, and are not
                                 ///< counted here)
    std::uint64_t replans = 0;   ///< mid-round plan changes applied
    std::uint64_t drains = 0;    ///< partial accumulators drained on shrink
    std::uint32_t peak_leaves = 0;

    // ---- fault/recovery telemetry ---------------------------------------
    std::uint64_t leaf_crashes = 0;    ///< injected leaf crashes recovered
    std::uint64_t middle_crashes = 0;  ///< injected middle crashes recovered
    std::uint64_t refolded = 0;    ///< client updates re-queued from aborted
                                   ///< leaf leases and folded again
    std::uint64_t reinjected = 0;  ///< leaf partials re-injected into a
                                   ///< replacement middle
    std::uint64_t quorum_seals = 0;      ///< rounds sealed at quorum
    std::uint64_t quorum_abandoned = 0;  ///< client updates abandoned by seals
    double recovery_secs = 0.0;  ///< replacement spawn time paid (cold-start
                                 ///< seconds; warm re-arms recover for free)
  };

  StreamingHierarchy(dp::DataPlane& plane, ctrl::CampaignPlanner& planner,
                     Config cfg);
  ~StreamingHierarchy();
  StreamingHierarchy(const StreamingHierarchy&) = delete;
  StreamingHierarchy& operator=(const StreamingHierarchy&) = delete;

  /// Arm the group's tree for a round of exactly `target` client updates
  /// (coordinator thread, shard idle). `plan` is the round-boundary plan
  /// for this group. `epoch` anchors the round's wall pulses (re-plan
  /// sampler, quorum deadline): pass the campaign's round epoch — the
  /// *global* barrier time — so pulse times do not depend on this shard's
  /// local clock, which varies with the shard count. Negative (the
  /// default) anchors to this shard's clock, fine for single-shard use.
  void begin_round(std::uint32_t round, std::uint64_t target,
                   const ctrl::GroupPlan& plan, double epoch = -1.0);

  /// Arm the group's tree for one continuous asynchronous stream of
  /// `target` client updates (kAsync: the whole campaign, not one round).
  /// Same claim machinery and warm pool as `begin_round`, but the leaves
  /// are FedBuff buffers — they accept any model version, fold with
  /// staleness-discounted weights against `Config::live_version`, and seal
  /// on count *or* on `Config::seal_deadline_secs` — and the relay is a
  /// recurring forwarder that flushes partial aggregates upward every
  /// `Config::flush_updates` folded updates (shrinking to the remainder at
  /// the tail), so nothing ever waits for a round barrier. `round_done()`
  /// flips when all `target` updates have been forwarded.
  void begin_stream(std::uint64_t target, const ctrl::GroupPlan& plan,
                    double epoch = -1.0);

  /// Park the round's (or stream's) remaining instances into the warm pool
  /// (coordinator thread, shard idle, after the round completed). With
  /// reuse disabled the pool is dropped instead.
  void end_round();

  /// Re-materialize the cross-round warm state from a checkpoint onto a
  /// freshly constructed engine (coordinator thread, before any round):
  /// `pool_n` parked warm runtimes, `slot_n` stable leaf slots, and the
  /// cumulative stats. A parked runtime is stateless under `rearm`, so only
  /// the pool *size* and the slot count (which pins leaf participant ids)
  /// are needed to make the resumed rounds' spawn/reuse decisions — and
  /// their telemetry — bitwise identical. The materialized instances are
  /// not counted as spawns: their cold starts were paid (and billed) by the
  /// run that wrote the checkpoint.
  void restore_warm(std::size_t pool_n, std::size_t slot_n,
                    const Stats& total);

  /// Apply a leaf-count target now (the re-plan pulse uses this; tests use
  /// it to force grow/shrink at chosen instants). Clamped to >= 1 while
  /// unclaimed work remains.
  void apply_leaf_target(std::uint32_t target);

  bool round_done() const noexcept { return relay_done_; }
  std::uint32_t active_leaves() const noexcept { return active_; }
  std::uint64_t claimed() const noexcept { return claimed_; }
  const Stats& total_stats() const noexcept { return total_; }
  const Stats& round_stats() const noexcept { return round_; }
  std::size_t warm_pool_size() const noexcept { return pool_.size(); }
  /// Stable leaf slots ever materialized (slot index pins the leaf's
  /// participant id, so a checkpoint must carry it).
  std::size_t leaf_slot_count() const noexcept { return slots_.size(); }

 private:
  /// Stable per-leaf slot: the runtime moves between the slot (active) and
  /// the warm pool (parked); `on_result` functors capture the slot pointer,
  /// which outlives every activation.
  struct LeafSlot {
    std::size_t idx = 0;
    std::unique_ptr<fl::AggregatorRuntime> rt;  ///< null when parked
    std::uint64_t batch = 0;    ///< size of the currently claimed batch
    std::size_t middle = kNoMiddle;  ///< parent middle, or relay
    bool retiring = false;
    /// Activation generation: bumped at every (re)arm so a parked deadline
    /// timer from an earlier activation recognizes it is stale.
    std::uint64_t gen = 0;
  };
  struct Middle {
    fl::ParticipantId id = 0;
    std::unique_ptr<fl::AggregatorRuntime> rt;
    std::uint64_t assigned = 0;  ///< client updates routed through it
  };
  static constexpr std::size_t kNoMiddle = static_cast<std::size_t>(-1);

  sim::Simulator& sim();
  fl::ParticipantId leaf_id(const LeafSlot& s) const {
    return cfg_.leaf_base + s.idx;
  }

  /// Pop a warm runtime and re-arm it, or construct one (cold start).
  std::unique_ptr<fl::AggregatorRuntime> acquire(
      fl::AggregatorRuntime::Config rc);
  void park(std::unique_ptr<fl::AggregatorRuntime> rt);

  std::uint64_t claim_batch();
  /// Choose the parent for a fresh batch of `n` updates and account it.
  std::size_t assign_parent(std::uint64_t n);
  void seal_middles();
  fl::AggregatorRuntime::Config leaf_config(const LeafSlot& s);
  /// Middle config as armed at begin_round; `recover_middle` rebuilds from
  /// it so a replacement resumes with the goal state the round reached.
  fl::AggregatorRuntime::Config middle_config(fl::ParticipantId id,
                                              std::size_t mi);
  bool activate_leaf();
  void retire_leaf(LeafSlot& s);
  void park_leaf(LeafSlot& s);
  void on_leaf_batch(LeafSlot* s, fl::ModelUpdate u);
  bool sampler_tick();
  /// Lossless leaf recovery: abort the dead instance's leases back into the
  /// group pool, move the dead sandbox to the graveyard, and re-arm the
  /// slot with a warm (or cold-spawned) replacement that re-claims and
  /// re-folds them. Runs synchronously from the crashed runtime's
  /// `on_failed`.
  void recover_leaf(LeafSlot* s);
  /// Lossless middle recovery: aborted leases (whole leaf partials) are
  /// re-injected straight into the same-id replacement — routing them
  /// through the pool would corrupt the leaves' message accounting.
  void recover_middle(std::size_t mi);
  /// Periodic post-deadline quorum probe; seals the round once arrivals
  /// reach quorum * target (or immediately if they already have).
  void quorum_check(std::uint32_t round);
  void seal_quorum();
  /// Effective seal deadline for the next buffer (fixed, or sized from the
  /// arrival EWMA under Config::adaptive_deadline).
  double leaf_deadline_secs() const;
  /// Relay flush threshold (async): Config::flush_updates or one middle's
  /// worth.
  std::uint32_t relay_flush() const;
  /// Bump the slot generation and, in async mode, start its seal deadline.
  void arm_leaf_deadline(LeafSlot& s);
  /// Deadline fire: force-seal the slot's partial buffer (if still on the
  /// same activation), or push the deadline back if nothing arrived yet.
  void flush_leaf(LeafSlot* s, std::uint64_t gen);

  dp::DataPlane& plane_;
  ctrl::CampaignPlanner& planner_;
  Config cfg_;
  Stats total_, round_;

  std::unique_ptr<fl::AggregatorRuntime> relay_;
  std::vector<Middle> middles_;
  std::vector<std::unique_ptr<LeafSlot>> slots_;
  std::vector<std::unique_ptr<fl::AggregatorRuntime>> pool_;
  /// Crashed sandboxes: a runtime cannot be destroyed from inside its own
  /// crash callback, so recovery parks the corpse here; reclaimed at
  /// end_round. Never re-armed.
  std::vector<std::unique_ptr<fl::AggregatorRuntime>> graveyard_;

  std::uint32_t round_num_ = 0;
  std::uint64_t target_ = 0;
  std::uint64_t claimed_ = 0;
  std::uint64_t forwarded_ = 0;  ///< async: client updates relayed upward
  bool sealed_ = false;      ///< the round's batches are fully assigned
  bool relay_done_ = false;
  bool quorum_sealed_ = false;   ///< this round was sealed at quorum
  std::uint32_t active_ = 0;     ///< live, non-retiring leaves
  std::size_t rr_ = 0;           ///< middle round-robin cursor
  std::uint64_t last_pushed_ = 0;  ///< pool total_pushed at last sample
  /// Round-local fault-draw counter: each leaf/middle arming consumes one
  /// draw, in group-local event order, so checkpoint replay re-derives the
  /// identical crash schedule with nothing serialized.
  std::uint64_t fault_seq_ = 0;
  std::uint64_t round_base_pushed_ = 0;  ///< pool total_pushed at round epoch
};

}  // namespace lifl::sys
