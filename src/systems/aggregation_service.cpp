#include "src/systems/aggregation_service.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/ml/tensor_pool.hpp"

namespace lifl::sys {

AggregationService::AggregationService(sim::Cluster& cluster,
                                       dp::DataPlane& plane, SystemConfig cfg)
    : cluster_(cluster),
      plane_(plane),
      cfg_(std::move(cfg)),
      placer_(cfg_.placement),
      planner_(cfg_.updates_per_leaf),
      metrics_(cluster.size()) {
  ctrl::NodeAgent::Config acfg;
  acfg.cold_start_secs = cfg_.cold_start_secs;
  acfg.cold_start_cycles = cfg_.cold_start_cycles;
  acfg.cold_trigger = cfg_.scaling == ScalingMode::kReactive
                          ? fl::ColdStartTrigger::kOnFirstUpdate
                          : fl::ColdStartTrigger::kOnStart;
  acfg.container_sidecar = cfg_.container_sidecar_idle;
  agents_.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    acfg.node = static_cast<sim::NodeId>(i);
    agents_.push_back(
        std::make_unique<ctrl::NodeAgent>(plane_, &metrics_, acfg));
    agents_.back()->start_metrics_loop();
  }
}

AggregationService::~AggregationService() {
  for (auto& a : agents_) a->stop_metrics_loop();
}

std::vector<ctrl::NodeCapacity> AggregationService::capacities() const {
  std::vector<ctrl::NodeCapacity> caps;
  caps.reserve(agents_.size());
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    ctrl::NodeCapacity c;
    c.node = static_cast<sim::NodeId>(i);
    // Heterogeneous clusters carry per-node MC_i (App. E estimates them
    // offline per hardware class); otherwise the homogeneous value.
    c.max_capacity = i < cfg_.node_capacities.size()
                         ? cfg_.node_capacities[i]
                         : cfg_.node_max_capacity;
    c.arrival_rate = metrics_.arrival_rate(c.node);
    c.exec_time = metrics_.exec_time(c.node, cfg_.default_exec_secs);
    caps.push_back(c);
  }
  return caps;
}

std::vector<sim::NodeId> AggregationService::place_updates(
    std::size_t n) const {
  auto caps = capacities();
  if (cfg_.top == TopPlacement::kDedicatedNode && caps.size() > 1) {
    // Serverful-style layouts dedicate the top node (§6.2): client updates
    // only land on the data (leaf/middle) nodes.
    caps.erase(std::remove_if(caps.begin(), caps.end(),
                              [this](const ctrl::NodeCapacity& c) {
                                return c.node == cfg_.dedicated_top_node;
                              }),
               caps.end());
  }
  return placer_.place_units(n, std::move(caps)).assignment;
}

sim::NodeId AggregationService::pod_placement_node(
    sim::NodeId data_node) const {
  if (cfg_.placement == ctrl::PlacementPolicy::kBestFit) {
    // Locality-aware placement (§5.1): the aggregator goes where its model
    // updates are queued, keeping cross-level traffic in shared memory.
    return data_node;
  }
  // Locality-agnostic control planes (Knative's "Least Connection" LB and
  // static serverful layouts) place pods by load, blind to where the pod's
  // inputs live — aggregators with cross-level data dependencies land on
  // different nodes and the gateway must route between them (§2.3, §5.1).
  sim::NodeId best = data_node;
  std::size_t best_live = agents_.at(data_node)->live();
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (agents_[i]->live() < best_live) {
      best = static_cast<sim::NodeId>(i);
      best_live = agents_[i]->live();
    }
  }
  return best;
}

sim::NodeId AggregationService::choose_top_node(
    const std::vector<std::uint32_t>& counts_per_node) const {
  if (cfg_.top == TopPlacement::kDedicatedNode) {
    return cfg_.dedicated_top_node;
  }
  // Locality: ride the node with the most pending updates so the largest
  // intermediate never crosses the network.
  const auto it =
      std::max_element(counts_per_node.begin(), counts_per_node.end());
  if (it == counts_per_node.end() || *it == 0) return cfg_.dedicated_top_node;
  return static_cast<sim::NodeId>(it - counts_per_node.begin());
}

void AggregationService::on_global(fl::ModelUpdate u) {
  pending_.completed_at = cluster_.sim().now();
  pending_.global_update = std::move(u);
  pending_.created = total_created() - created_at_arm_;
  pending_.reused = total_reused() - reused_at_arm_ + promotions_;
  const ml::TensorPoolStats pool = ml::TensorPool::global().stats();
  pending_.tensor_pool_hits = pool.pool_hits - pool_hits_at_arm_;
  pending_.tensor_allocs = pool.misses - pool_misses_at_arm_;
  double first = -1.0;
  for (const auto* rt : batch_instances_) {
    if (rt->first_arrival_at() >= 0 &&
        (rt->config().role == fl::AggRole::kLeaf ||
         rt->config().pull_from_pool)) {
      first = first < 0 ? rt->first_arrival_at()
                        : std::min(first, rt->first_arrival_at());
    }
  }
  pending_.first_arrival_at = first;
  if (on_complete_) on_complete_(pending_);
}

fl::AggregatorRuntime& AggregationService::spawn_leaf(
    sim::NodeId node, std::uint32_t goal, fl::ParticipantId consumer,
    bool promote_wiring) {
  fl::AggregatorRuntime::Config lc;
  lc.id = fresh_id();
  lc.role = fl::AggRole::kLeaf;
  lc.timing = cfg_.timing;
  lc.goal = std::max<std::uint32_t>(goal, 1);
  lc.result_bytes = update_bytes_;
  lc.pull_from_pool = true;
  lc.expected_version = model_version_;
  if (promote_wiring) {
    // Deferred wiring (§5.3): route through the service so a finished leaf
    // can be promoted in place of a cold higher-level instance.
    lc.on_result = [this, node, id = lc.id](fl::ModelUpdate u) {
      auto it = std::find_if(
          batch_instances_.begin(), batch_instances_.end(),
          [id](fl::AggregatorRuntime* r) { return r->config().id == id; });
      on_leaf_output(node, **it, std::move(u));
    };
  } else {
    lc.consumer = consumer;
  }
  const bool allow_reuse =
      cfg_.reuse || cfg_.scaling == ScalingMode::kAlwaysOn;
  auto& rt = agents_.at(node)->spawn(lc, allow_reuse);
  batch_instances_.push_back(&rt);
  tag_.add_vertex({lc.id, ctrl::TagRole::kAggregator, node});
  return rt;
}

void AggregationService::arm(const std::vector<std::uint32_t>& counts_per_node,
                             std::uint32_t model_version,
                             std::size_t update_bytes,
                             CompletionFn on_complete) {
  if (counts_per_node.size() != cluster_.size()) {
    throw std::invalid_argument("arm: counts size != cluster size");
  }
  const std::uint32_t total = std::accumulate(
      counts_per_node.begin(), counts_per_node.end(), std::uint32_t{0});
  if (total == 0) throw std::invalid_argument("arm: no updates");

  on_complete_ = std::move(on_complete);
  pending_ = BatchResult{};
  pending_.armed_at = cluster_.sim().now();
  pending_.updates = total;
  created_at_arm_ = total_created();
  reused_at_arm_ = total_reused();
  const ml::TensorPoolStats pool = ml::TensorPool::global().stats();
  pool_hits_at_arm_ = pool.pool_hits;
  pool_misses_at_arm_ = pool.misses;
  promotions_ = 0;
  batch_instances_.clear();
  node_batches_.assign(cluster_.size(), NodeBatch{});
  top_ = nullptr;
  top_id_ = 0;
  model_version_ = model_version;
  update_bytes_ = update_bytes;
  tag_ = ctrl::Tag{};

  const sim::NodeId top_node = choose_top_node(counts_per_node);

  // Vertical gateway scaling (§4.2): size each node's gateway cores so the
  // expected ingest load cannot make the gateway the data-plane bottleneck.
  if (cfg_.plane.plane == dp::PlaneKind::kLifl) {
    const double gw_secs_per_update =
        (sim::calib::kClientStreamExtraCyclesPerByte +
         sim::calib::kDeserializeCyclesPerByte +
         sim::calib::kShmWriteCyclesPerByte) *
        static_cast<double>(update_bytes) / sim::calib::kCpuHz;
    for (std::size_t i = 0; i < counts_per_node.size(); ++i) {
      if (counts_per_node[i] == 0) continue;
      constexpr double kTargetIngestSecs = 5.0;
      const auto cores = static_cast<std::uint32_t>(std::clamp(
          std::ceil(counts_per_node[i] * gw_secs_per_update /
                    kTargetIngestSecs),
          2.0, 8.0));
      plane_.set_gateway_cores(static_cast<sim::NodeId>(i), cores);
    }
  }

  if (!cfg_.hierarchical) {
    // Flat baseline (NH of §4.1): one aggregator folds everything.
    fl::AggregatorRuntime::Config tc;
    tc.id = fresh_id();
    tc.role = fl::AggRole::kTop;
    tc.timing = cfg_.timing;
    tc.goal = total;
    tc.result_bytes = update_bytes;
    tc.pull_from_pool = true;
    tc.expected_version = model_version;
    tc.on_result = [this](fl::ModelUpdate u) { on_global(std::move(u)); };
    const bool allow_reuse =
        cfg_.reuse || cfg_.scaling == ScalingMode::kAlwaysOn;
    auto& rt = agents_.at(top_node)->spawn(tc, allow_reuse);
    batch_instances_.push_back(&rt);
    top_ = &rt;
    top_id_ = tc.id;
    pending_.nodes_used = 1;
    tag_.add_vertex({tc.id, ctrl::TagRole::kAggregator, top_node});
    return;
  }

  const std::vector<double> pending_per_node(counts_per_node.begin(),
                                             counts_per_node.end());
  const ctrl::HierarchyPlan plan = planner_.plan(pending_per_node, top_node);
  pending_.nodes_used = plan.nodes_used();
  top_goal_ = std::max<std::uint32_t>(plan.top_fanin(), 1);

  const bool promote =
      cfg_.reuse && cfg_.scaling != ScalingMode::kAlwaysOn;
  if (promote) {
    arm_with_promotion(plan);
  } else {
    arm_static(plan, top_node);
  }

  // Hierarchy-aware scaling trims spare warm capacity after re-planning.
  if (cfg_.scaling == ScalingMode::kHierarchyAware) {
    for (auto& a : agents_) a->terminate_warm();
  }
}

void AggregationService::arm_static(const ctrl::HierarchyPlan& plan,
                                    sim::NodeId top_node) {
  const bool allow_reuse =
      cfg_.reuse || cfg_.scaling == ScalingMode::kAlwaysOn;

  // ---- Top aggregator.
  fl::AggregatorRuntime::Config tc;
  tc.id = fresh_id();
  tc.role = fl::AggRole::kTop;
  tc.timing = cfg_.timing;
  tc.goal = top_goal_;
  tc.result_bytes = update_bytes_;
  tc.expected_version = model_version_;
  tc.on_result = [this](fl::ModelUpdate u) { on_global(std::move(u)); };
  top_id_ = tc.id;
  auto& top_rt = agents_.at(top_node)->spawn(tc, allow_reuse);
  batch_instances_.push_back(&top_rt);
  top_ = &top_rt;
  tag_.add_vertex({top_id_, ctrl::TagRole::kAggregator, top_node});

  // ---- Per-node trees: leaves + middle (optional). Leaves spawn first —
  // they are what the incoming load creates — so the middle's placement
  // decision sees the cluster as the control plane would.
  for (const auto& np : plan.per_node) {
    const std::string group = "node" + std::to_string(np.node);
    // Pre-assign the middle's identity so leaves can be wired to it; the
    // actual pod is placed after them.
    const fl::ParticipantId parent = np.middle ? fresh_id() : top_id_;

    std::uint32_t remaining = np.expected_updates;
    std::vector<fl::ParticipantId> leaf_ids;
    for (std::uint32_t l = 0; l < np.leaves; ++l) {
      const std::uint32_t take =
          std::min<std::uint32_t>(plan.updates_per_leaf, remaining);
      remaining -= take;
      auto& lrt = spawn_leaf(np.node, take, parent, /*promote_wiring=*/false);
      leaf_ids.push_back(lrt.config().id);
    }

    sim::NodeId parent_node = top_node;
    if (np.middle) {
      // Where the middle pod actually lands depends on whether the control
      // plane is locality-aware (§5.1): BestFit keeps it with its leaves,
      // least-connection layouts scatter it.
      const sim::NodeId mnode = pod_placement_node(np.node);
      fl::AggregatorRuntime::Config mc;
      mc.id = parent;
      mc.role = fl::AggRole::kMiddle;
      mc.timing = cfg_.timing;
      mc.goal = np.leaves;
      mc.consumer = top_id_;
      mc.result_bytes = update_bytes_;
      mc.expected_version = model_version_;
      auto& mrt = agents_.at(mnode)->spawn(mc, allow_reuse);
      batch_instances_.push_back(&mrt);
      parent_node = mnode;
      node_batches_[np.node].middle_id = mc.id;
      node_batches_[np.node].middle = &mrt;
      tag_.add_vertex({mc.id, ctrl::TagRole::kAggregator, mnode});
      tag_.add_channel({mc.id, top_id_,
                        mnode == top_node
                            ? ctrl::ChannelKind::kIntraNodeShm
                            : ctrl::ChannelKind::kInterNodeKernel,
                        group});
    }
    for (const auto leaf_id : leaf_ids) {
      tag_.add_channel({leaf_id, parent,
                        np.node == parent_node
                            ? ctrl::ChannelKind::kIntraNodeShm
                            : ctrl::ChannelKind::kInterNodeKernel,
                        group});
    }
  }
}

void AggregationService::arm_with_promotion(const ctrl::HierarchyPlan& plan) {
  // Only leaves spawn up front; middles and the top are *promoted* from the
  // first instance to finish at the level below (§5.3) — no cold higher
  // levels, and strictly fewer instances created (Fig. 8(c)).
  for (const auto& np : plan.per_node) {
    auto& nb = node_batches_[np.node];
    nb.leaves = np.leaves;
    nb.wants_middle = np.middle;
    std::uint32_t remaining = np.expected_updates;
    for (std::uint32_t l = 0; l < np.leaves; ++l) {
      const std::uint32_t take =
          std::min<std::uint32_t>(plan.updates_per_leaf, remaining);
      remaining -= take;
      spawn_leaf(np.node, take, 0, /*promote_wiring=*/true);
    }
  }
}

void AggregationService::on_leaf_output(sim::NodeId node,
                                        fl::AggregatorRuntime& leaf,
                                        fl::ModelUpdate u) {
  NodeBatch& nb = node_batches_.at(node);
  if (!nb.wants_middle) {
    // Single-leaf node: its aggregate is the node intermediate.
    on_intermediate_output(node, leaf, std::move(u));
    return;
  }
  if (nb.middle_id == 0) {
    // Promote this just-finished leaf to the node's middle aggregator.
    ++promotions_;
    fl::AggregatorRuntime::Config mc;
    mc.id = fresh_id();
    mc.node = node;
    mc.role = fl::AggRole::kMiddle;
    mc.timing = cfg_.timing;
    mc.goal = nb.leaves;
    mc.result_bytes = update_bytes_;
    mc.expected_version = model_version_;
    mc.on_result = [this, node, id = mc.id](fl::ModelUpdate out) {
      auto it = std::find_if(
          batch_instances_.begin(), batch_instances_.end(),
          [id](fl::AggregatorRuntime* r) { return r->config().id == id; });
      on_intermediate_output(node, **it, std::move(out));
    };
    leaf.convert_role(mc);
    nb.middle_id = mc.id;
    nb.middle = &leaf;
    tag_.add_vertex({mc.id, ctrl::TagRole::kAggregator, node});
    // The promoted instance already holds its own aggregate: no transfer.
    leaf.inject(std::move(u));
    return;
  }
  // Middle exists: ship the leaf output over the (intra-node) data plane.
  plane_.send(leaf.config().id, node, nb.middle_id, std::move(u));
  // Fine-grained elasticity: the leaf's task is over, so its instance goes
  // back to the warm pool immediately (it remains promotable/reusable)
  // instead of idling until the round ends.
  agents_.at(node)->park(leaf);
}

void AggregationService::on_intermediate_output(sim::NodeId node,
                                                fl::AggregatorRuntime& agg,
                                                fl::ModelUpdate u) {
  if (top_id_ == 0) {
    // Promote the first-finishing middle to the top aggregator (§5.3); its
    // node becomes the top node, which also maximizes locality.
    ++promotions_;
    fl::AggregatorRuntime::Config tc;
    tc.id = fresh_id();
    tc.node = node;
    tc.role = fl::AggRole::kTop;
    tc.timing = cfg_.timing;
    tc.goal = top_goal_;
    tc.result_bytes = update_bytes_;
    tc.expected_version = model_version_;
    tc.on_result = [this](fl::ModelUpdate out) { on_global(std::move(out)); };
    agg.convert_role(tc);
    top_id_ = tc.id;
    top_ = &agg;
    tag_.add_vertex({tc.id, ctrl::TagRole::kAggregator, node});
    agg.inject(std::move(u));
    return;
  }
  plane_.send(agg.config().id, node, top_id_, std::move(u));
  agents_.at(node)->park(agg);
}

void AggregationService::prewarm(const std::vector<std::uint32_t>& per_node) {
  for (std::size_t i = 0; i < per_node.size() && i < agents_.size(); ++i) {
    for (std::uint32_t k = 0; k < per_node[i]; ++k) {
      fl::AggregatorRuntime::Config c;
      c.id = fresh_id();
      c.role = fl::AggRole::kLeaf;
      c.goal = 1;
      auto& rt = agents_[i]->spawn(c, /*allow_reuse=*/false, /*warm=*/true);
      if (cfg_.scaling == ScalingMode::kAlwaysOn) {
        // Serverful fleets hold their reservation permanently.
        plane_.register_idle_draw(static_cast<sim::NodeId>(i),
                                  sim::CostTag::kIdleReservation,
                                  cfg_.always_on_reserved_cores);
      }
      agents_[i]->park(rt);
    }
  }
}

void AggregationService::finish_batch() {
  const bool keep = cfg_.reuse || cfg_.scaling == ScalingMode::kAlwaysOn;
  for (auto* rt : batch_instances_) {
    auto& agent = *agents_.at(rt->config().node);
    if (keep) {
      agent.park(*rt);
    } else {
      agent.terminate(*rt);  // serverless scale-to-zero after idle
    }
  }
  batch_instances_.clear();
  node_batches_.clear();
  top_ = nullptr;
  top_id_ = 0;
}

std::size_t AggregationService::live_instances() const {
  std::size_t n = 0;
  for (const auto& a : agents_) n += a->live();
  return n;
}

std::size_t AggregationService::warm_instances() const {
  std::size_t n = 0;
  for (const auto& a : agents_) n += a->warm();
  return n;
}

std::uint32_t AggregationService::total_created() const {
  std::uint32_t n = 0;
  for (const auto& a : agents_) n += a->created();
  return n;
}

std::uint32_t AggregationService::total_reused() const {
  std::uint32_t n = 0;
  for (const auto& a : agents_) n += a->reused();
  return n;
}

}  // namespace lifl::sys
