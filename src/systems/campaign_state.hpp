#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/control/campaign_planner.hpp"
#include "src/control/selection.hpp"
#include "src/dataplane/dataplane.hpp"
#include "src/dataplane/resumable_upload.hpp"
#include "src/fl/aggregator_runtime.hpp"
#include "src/fl/checkpoint.hpp"
#include "src/sim/node.hpp"
#include "src/sim/random.hpp"
#include "src/sim/sharded_simulator.hpp"
#include "src/sim/simulator.hpp"
#include "src/systems/sharded_campaign.hpp"
#include "src/systems/streaming_hierarchy.hpp"
#include "src/workload/population.hpp"

namespace lifl::sys::detail {

/// One node group of the sharded mega-campaign: a single-node cluster with
/// its own LIFL data plane, arrival process and population slice. All
/// fields are touched only by the shard the group maps to (or by the
/// coordinator between rounds). Shared between the campaign driver
/// (sharded_campaign.cpp) and the checkpoint subsystem
/// (campaign_checkpoint.cpp), which snapshots/restores the cross-round
/// durable fields — everything else is re-armed per round.
struct Group {
  std::size_t id = 0;
  std::size_t shard = 0;
  sim::Simulator* sim = nullptr;
  std::unique_ptr<sim::Cluster> cluster;
  std::unique_ptr<dp::DataPlane> plane;
  wl::ClientPopulation population;
  std::unique_ptr<wl::ArrivalProcess> arrivals;
  sim::Rng rng{0};
  std::vector<std::unique_ptr<fl::AggregatorRuntime>> aggs;  ///< fixed mode
  std::unique_ptr<StreamingHierarchy> hier;                  ///< planned mode
  /// Passive observability handle (this group's track + shard ring).
  /// Disabled (all-null) unless the campaign config enabled obs.
  obs::GroupObs obs;

  // Open-loop arrival chain state for the current round (one pending
  // arrival event at a time, profiles derived lazily per index).
  double epoch = 0.0;
  double next_rel = 0.0;
  std::uint64_t launched = 0;
  std::uint64_t target = 0;
  std::uint64_t participant_counter = 0;
  std::uint32_t round = 0;
  std::uint64_t total_uploads = 0;
  /// Cross-shard relay posts this group's hierarchy has made in the
  /// current round (stream, in async mode). Feeds the shard's outbound
  /// promise under adaptive/optimistic sync; re-armed with the round, and
  /// never serialized — resume replay re-derives it from the boundary.
  std::uint64_t relays_done = 0;

  // Client-side fault telemetry, cumulative across rounds (group-local
  // event order only, so bitwise shard-invariant; checkpointed).
  std::uint64_t upload_retries = 0;
  std::uint64_t upload_drops = 0;
  std::uint64_t upload_corruptions = 0;
  std::uint64_t overflow_rejects = 0;
  std::uint64_t outage_rejects = 0;

  // ---- edge-client lifecycle + selection (cumulative; checkpointed) ----
  /// Selection strategy for this group's arrival chain. Null when the
  /// campaign runs the legacy random oracle over an untiered population
  /// (that path stays allocation-free and bitwise unchanged).
  std::unique_ptr<ctrl::SelectionStrategy> strategy;
  /// Resumable-upload session telemetry (chunk counts, disconnects).
  dp::ResumableUpload::Counters lifecycle;
  std::uint64_t selection_redraws = 0;  ///< picks refused, redrawn
  std::uint32_t offline_peak = 0;       ///< max parked sessions, any client
  double gate_wait_secs = 0.0;          ///< duty-cycle gate delay total
  /// Per-tier participation counters (index = wl::DeviceTier).
  std::array<std::uint64_t, wl::kTierCount> tier_selected{};
  std::array<std::uint64_t, wl::kTierCount> tier_completed{};
  std::array<std::uint64_t, wl::kTierCount> tier_disconnects{};
  std::array<std::uint64_t, wl::kTierCount> tier_stragglers{};
  /// Per-tier straggler probability (precomputed at setup from
  /// straggler_fraction and the tier mix; empty-handed in legacy mode).
  std::array<double, wl::kTierCount> straggler_p{};
  /// Live upload sessions per population index (bounds the per-client
  /// offline queue at pick time) and currently parked (offline) sessions
  /// per index. Transient event-driven state: empty at every quiescent
  /// round boundary, so never serialized.
  std::unordered_map<std::uint64_t, std::uint32_t> live_sessions;
  std::unordered_map<std::uint64_t, std::uint32_t> parked;
};

/// Whole-campaign runtime state, owned by `run_sharded_campaign` for the
/// duration of one call.
struct CampaignState {
  const ShardedCampaignConfig* cfg = nullptr;
  sim::ShardedSimulator* sharded = nullptr;
  std::vector<Group> groups;
  std::unique_ptr<ctrl::CampaignPlanner> planner;  ///< planned/async modes
  std::unique_ptr<fl::AggregatorRuntime> top_rt;   ///< planned: reused
  fl::AggregatorRuntime* top = nullptr;  ///< current round's top (group 0)
  /// The deterministic fault schedule (cfg->fault); disabled = fault-free.
  sim::FaultPlan faults;
  /// The deterministic client-lifecycle schedule (cfg->lifecycle with the
  /// campaign seed mixed in); disabled = reliable always-on clients.
  wl::LifecyclePlan lifecycle;
  /// The top's current folded-update goal this round: starts at
  /// uploads_per_round() and shrinks as groups report quorum shortfalls;
  /// a crashed top's replacement re-arms at this goal.
  std::uint64_t top_goal = 0;
  /// Top crashes recovered, cumulative (checkpointed with the result).
  std::uint64_t top_crashes = 0;
  /// Replacement cold-start seconds paid for crashed tops, cumulative.
  double top_recovery_secs = 0.0;
  /// Crashed top sandboxes: a runtime cannot be destroyed from inside its
  /// own crash callback; reclaimed at the round epilogue.
  std::vector<std::unique_ptr<fl::AggregatorRuntime>> graveyard;
  bool round_done = false;
  double completed_at = -1.0;
  std::uint64_t round_samples = 0;
  double round_weight = 0.0;  ///< effective weight of the last round/version

  // ---- observability (passive; never checkpointed) ---------------------
  /// Campaign-track handle writing group 0's shard ring: checkpoint-mark
  /// pulses and async version emissions run on that shard's thread.
  obs::GroupObs camp_obs;
  /// Campaign-track handle writing the coordinator ring — only touched
  /// between windows (round epilogues, checkpoint blob cuts).
  obs::GroupObs coord_obs;

  // ---- async stream (hierarchy == kAsync) ------------------------------
  // Version-cadence state of the recurring top. Written by group 0's shard
  // during the stream, read by the coordinator at barriers (the shard
  // join/barrier orders the accesses).
  std::uint64_t async_total = 0;   ///< client updates in the whole stream
  std::uint64_t async_quota = 0;   ///< folded updates per model version (K)
  std::uint64_t async_folded = 0;  ///< cumulative folded updates
  std::uint32_t async_version = 1; ///< current global model version
  double version_started_at = 0.0;
  /// Auto-quota (cfg->async_auto_quota): EWMA of each version's
  /// effective/raw weight ratio, and quota changes applied so far. Written
  /// on group 0's shard at version boundaries; checkpointed (the EWMA is a
  /// float recurrence, so replay cannot recover it bit-exactly).
  double quota_ratio = 1.0;
  bool quota_ratio_init = false;
  std::uint64_t quota_adjustments = 0;
  /// Per-version telemetry sink (the result being built): the recurring
  /// top's on_result appends directly from group 0's shard.
  ShardedCampaignResult* out = nullptr;

  // ---- checkpointing ---------------------------------------------------
  /// Snapshot persistence cost model, on group 0's node (Appendix B path).
  std::unique_ptr<fl::CheckpointManager> ckpt;
  /// Marks billed in-sim so far (serialized into every snapshot, so a
  /// resumed campaign reports the uninterrupted total).
  std::uint64_t ckpt_marks = 0;
  /// Size the in-sim pulse bills per mark: the current round's boundary
  /// image plus the cut trailer — identical on replay because the boundary
  /// encoding is deterministic.
  std::size_t ckpt_blob_bytes = 0;
};

}  // namespace lifl::sys::detail
