#include "src/systems/campaign_checkpoint.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "src/sim/cpu_accounting.hpp"
#include "src/sim/snapshot.hpp"

namespace lifl::sys {

namespace {

constexpr std::uint32_t kSecResult = 1;
constexpr std::uint32_t kSecShards = 2;
constexpr std::uint32_t kSecGroups = 3;
constexpr std::uint32_t kSecPlanner = 4;
constexpr std::uint32_t kSecTop = 5;
constexpr std::uint32_t kSecCut = 6;

constexpr std::size_t kCpuTags =
    static_cast<std::size_t>(sim::CostTag::kCount);

/// FNV-1a accumulator over the config's simulation-shaping fields.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  void mix(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  }
};

void save_resource(sim::Serializer& s, const sim::Resource& r) {
  const auto img = r.stats_image();
  s.f64(img.busy_integral);
  s.f64(img.total_wait);
  s.f64(img.last_change);
  s.f64(img.stats_epoch);
  s.u64(img.completed);
}

void load_resource(sim::Deserializer& d, sim::Resource& r) {
  sim::Resource::StatsImage img;
  img.busy_integral = d.f64();
  img.total_wait = d.f64();
  img.last_change = d.f64();
  img.stats_epoch = d.f64();
  img.completed = d.u64();
  r.restore_stats_image(img);
}

void save_hier_stats(sim::Serializer& s, const StreamingHierarchy::Stats& h) {
  s.u64(h.spawned);
  s.u64(h.reused);
  s.u64(h.replans);
  s.u64(h.drains);
  s.u32(h.peak_leaves);
  s.u64(h.leaf_crashes);
  s.u64(h.middle_crashes);
  s.u64(h.refolded);
  s.u64(h.reinjected);
  s.u64(h.quorum_seals);
  s.u64(h.quorum_abandoned);
  s.f64(h.recovery_secs);
}

StreamingHierarchy::Stats load_hier_stats(sim::Deserializer& d) {
  StreamingHierarchy::Stats h;
  h.spawned = d.u64();
  h.reused = d.u64();
  h.replans = d.u64();
  h.drains = d.u64();
  h.peak_leaves = d.u32();
  h.leaf_crashes = d.u64();
  h.middle_crashes = d.u64();
  h.refolded = d.u64();
  h.reinjected = d.u64();
  h.quorum_seals = d.u64();
  h.quorum_abandoned = d.u64();
  h.recovery_secs = d.f64();
  return h;
}

/// Every queue the campaign model owns must be quiescent at a round
/// boundary: a snapshot cannot carry in-flight work (only the cut replay
/// can re-create it), so anything non-idle here is a driver bug.
void require_quiescent(const detail::CampaignState& st) {
  if (st.sharded->pending_regular() != 0) {
    throw std::logic_error(
        "CampaignCheckpoint: shards have pending events at the boundary");
  }
  for (const detail::Group& g : st.groups) {
    dp::DataPlane::NodeEnv& env = g.plane->env(0);
    if (env.pool.depth() != 0 || env.pool.waiter_count() != 0 ||
        env.pool.depth_watcher_count() != 0 || env.pool.leases() != 0) {
      throw std::logic_error(
          "CampaignCheckpoint: update pool not quiescent at the boundary");
    }
    if (env.store.size() != 0) {
      throw std::logic_error(
          "CampaignCheckpoint: shm store holds live objects at the boundary");
    }
    if (env.gateway.busy() != 0 || env.gateway.queue_length() != 0) {
      throw std::logic_error(
          "CampaignCheckpoint: gateway busy at the boundary");
    }
    if (!g.live_sessions.empty() || !g.parked.empty()) {
      throw std::logic_error(
          "CampaignCheckpoint: live client upload sessions at the boundary");
    }
  }
}

void save_tier_counts(
    sim::Serializer& s,
    const std::array<std::uint64_t, wl::kTierCount>& counts) {
  for (std::uint64_t c : counts) s.u64(c);
}

void load_tier_counts(sim::Deserializer& d,
                      std::array<std::uint64_t, wl::kTierCount>& counts) {
  for (std::uint64_t& c : counts) c = d.u64();
}

}  // namespace

std::uint64_t CampaignCheckpoint::config_digest(
    const ShardedCampaignConfig& cfg) {
  Digest d;
  d.mix(static_cast<std::uint64_t>(cfg.shards));
  d.mix(static_cast<std::uint64_t>(cfg.groups));
  d.mix(static_cast<std::uint64_t>(cfg.rounds));
  d.mix(static_cast<std::uint64_t>(cfg.updates_per_leaf));
  d.mix(static_cast<std::uint64_t>(cfg.leaves_per_group));
  d.mix(static_cast<std::uint64_t>(cfg.model_bytes));
  d.mix(static_cast<std::uint64_t>(cfg.population));
  d.mix(cfg.peak_per_sec);
  d.mix(cfg.ramp_secs);
  d.mix(cfg.diurnal_amplitude);
  d.mix(cfg.diurnal_period_secs);
  d.mix(cfg.seed);
  d.mix(static_cast<std::uint64_t>(cfg.timing));
  d.mix(static_cast<std::uint64_t>(cfg.gateway_cores));
  d.mix(static_cast<std::uint64_t>(cfg.gateway_queues));
  d.mix(static_cast<std::uint64_t>(cfg.hierarchy));
  d.mix(static_cast<std::uint64_t>(cfg.reuse));
  d.mix(cfg.replan_interval_secs);
  d.mix(static_cast<std::uint64_t>(cfg.middle_fanin));
  d.mix(cfg.ewma_alpha);
  d.mix(cfg.replan_hysteresis);
  d.mix(static_cast<std::uint64_t>(cfg.cold_start_spawns));
  d.mix(cfg.async_deadline_secs);
  d.mix(static_cast<std::uint64_t>(cfg.async_flush_updates));
  d.mix(cfg.straggler_fraction);
  d.mix(cfg.straggler_delay_secs);
  // The fault schedule and degradation knobs shape every event time, so a
  // blob only replays under the identical plan.
  d.mix(cfg.fault.seed);
  d.mix(cfg.fault.leaf_crash_rate);
  d.mix(cfg.fault.middle_crash_rate);
  d.mix(cfg.fault.top_crash_rate);
  d.mix(cfg.fault.upload_drop_rate);
  d.mix(cfg.fault.upload_corrupt_rate);
  d.mix(cfg.fault.outage_rate);
  d.mix(cfg.fault.outage_secs);
  d.mix(cfg.fault.outage_start_max_secs);
  d.mix(static_cast<std::uint64_t>(cfg.fault.gateway_overflow_depth));
  d.mix(cfg.fault.retry_base_secs);
  d.mix(cfg.fault.retry_cap_secs);
  d.mix(cfg.fault.retry_jitter);
  d.mix(cfg.quorum);
  d.mix(cfg.round_deadline_secs);
  d.mix(static_cast<std::uint64_t>(cfg.async_adaptive_deadline));
  // The mark grid and the persistence cost model shape simulated time, so
  // a blob only resumes under the identical checkpointing regime.
  d.mix(cfg.checkpoint_every_secs);
  d.mix(cfg.checkpoint_cost.storage_bytes_per_sec);
  d.mix(cfg.checkpoint_cost.marshal_cycles_per_byte);
  // v4: tier mix, client-lifecycle plan, selector policy and auto-quota all
  // shape selection draws and session event times.
  d.mix(cfg.device_tiers.flagship);
  d.mix(cfg.device_tiers.mid);
  d.mix(cfg.device_tiers.iot);
  d.mix(cfg.lifecycle.seed);
  d.mix(cfg.lifecycle.disconnect_rate);
  d.mix(static_cast<std::uint64_t>(cfg.lifecycle.chunk_bytes));
  d.mix(static_cast<std::uint64_t>(cfg.lifecycle.offline_queue_cap));
  d.mix(cfg.lifecycle.offline_base_secs);
  d.mix(cfg.lifecycle.offline_cap_secs);
  d.mix(cfg.lifecycle.offline_jitter);
  d.mix(static_cast<std::uint64_t>(cfg.lifecycle.session_gates));
  d.mix(cfg.lifecycle.connect_period_secs);
  d.mix(cfg.lifecycle.charge_period_secs);
  d.mix(static_cast<std::uint64_t>(cfg.selector));
  d.mix(cfg.selection.seed);
  d.mix(cfg.selection.alpha);
  d.mix(cfg.selection.score_gamma);
  d.mix(cfg.selection.exclude_below);
  d.mix(cfg.selection.scan_weight);
  d.mix(cfg.selection.straggler_factor);
  d.mix(static_cast<std::uint64_t>(cfg.async_auto_quota));
  d.mix(static_cast<std::uint64_t>(cfg.async_min_quota));
  return d.h;
}

std::vector<std::uint8_t> CampaignCheckpoint::encode_boundary(
    const detail::CampaignState& st, const ShardedCampaignResult& partial,
    std::uint32_t next_round) {
  require_quiescent(st);
  const ShardedCampaignConfig& cfg = *st.cfg;
  const bool orchestrated = cfg.hierarchy != HierarchyMode::kFixed;

  sim::Serializer s;
  s.u64(kMagic);
  s.u32(kVersion);
  s.u64(config_digest(cfg));
  s.u32(static_cast<std::uint32_t>(st.sharded->shard_count()));
  s.u32(static_cast<std::uint32_t>(cfg.groups));
  s.boolean(orchestrated);
  s.u32(next_round);

  s.begin_section(kSecResult);
  s.pod_vec(partial.round_started_at);
  s.pod_vec(partial.round_completed_at);
  s.pod_vec(partial.round_samples);
  s.pod_vec(partial.round_weight);
  s.pod_vec(partial.round_spawned);
  s.pod_vec(partial.round_reused);
  s.pod_vec(partial.round_refolded);
  s.u64(partial.spawned_total);
  s.u64(partial.reused_total);
  s.u64(partial.replans);
  s.u64(partial.leaf_drains);
  s.u32(partial.peak_leaves);
  s.u64(partial.leaf_crashes);
  s.u64(partial.middle_crashes);
  s.u64(partial.refolded_updates);
  s.u64(partial.reinjected_partials);
  s.u64(partial.quorum_seals);
  s.u64(partial.quorum_abandoned);
  s.f64(partial.recovery_secs);
  s.u64(st.top_crashes);
  s.f64(st.top_recovery_secs);
  s.u64(st.ckpt_marks);
  // v4: the auto-quota controller (async mode; inert zeros otherwise).
  s.u64(st.async_quota);
  s.f64(st.quota_ratio);
  s.boolean(st.quota_ratio_init);
  s.u64(st.quota_adjustments);
  s.end_section();

  s.begin_section(kSecShards);
  for (std::size_t i = 0; i < st.sharded->shard_count(); ++i) {
    sim::Simulator& shard = st.sharded->shard(i);
    s.f64(shard.now());
    s.u64(shard.dispatched());
  }
  s.end_section();

  s.begin_section(kSecGroups);
  for (const detail::Group& g : st.groups) {
    save(s, g.rng);
    s.u64(g.participant_counter);
    s.u64(g.total_uploads);
    s.u64(g.upload_retries);
    s.u64(g.upload_drops);
    s.u64(g.upload_corruptions);
    s.u64(g.overflow_rejects);
    s.u64(g.outage_rejects);

    // v4: edge-client lifecycle + selection telemetry.
    s.u64(g.lifecycle.sessions);
    s.u64(g.lifecycle.completed);
    s.u64(g.lifecycle.disconnects);
    s.u64(g.lifecycle.resumes);
    s.u64(g.lifecycle.chunks_sent);
    s.u64(g.lifecycle.chunks_resent);
    s.u64(g.selection_redraws);
    s.u32(g.offline_peak);
    s.f64(g.gate_wait_secs);
    save_tier_counts(s, g.tier_selected);
    save_tier_counts(s, g.tier_completed);
    save_tier_counts(s, g.tier_disconnects);
    save_tier_counts(s, g.tier_stragglers);
    // The strategy's learned per-tier scores (zeros for the legacy random
    // oracle, which carries no state).
    const ctrl::SelectionStrategy::State sel =
        g.strategy ? g.strategy->state() : ctrl::SelectionStrategy::State{};
    for (const ctrl::TierScore& ts : sel.scores) {
      s.f64(ts.dur);
      s.boolean(ts.dur_init);
      s.f64(ts.succ);
      s.boolean(ts.succ_init);
    }

    dp::DataPlane::NodeEnv& env = g.plane->env(0);
    s.u64(env.pool.max_depth());
    s.u64(env.pool.total_pushed());
    s.f64(env.pool.total_queueing_delay());

    save(s, env.store.rng_state());
    const shm::ObjectStoreStats& os = env.store.stats();
    s.u64(os.puts);
    s.u64(os.gets);
    s.u64(os.releases);
    s.u64(os.recycled_buffers);
    s.u64(os.bytes_in_use);
    s.u64(os.peak_bytes);
    s.u64(os.pool_bytes);

    s.u32(static_cast<std::uint32_t>(env.gateway.queue_count()));
    for (std::size_t q = 0; q < env.gateway.queue_count(); ++q) {
      save_resource(s, env.gateway.queue(q));
    }

    sim::Node& node = g.cluster->node(0);
    save_resource(s, node.cores());
    save_resource(s, node.kernel_net());
    save_resource(s, node.nic());
    for (std::size_t t = 0; t < kCpuTags; ++t) {
      s.f64(node.cpu().cycles(static_cast<sim::CostTag>(t)));
    }
    s.f64(node.cpu().total_cycles());

    const auto metrics = env.metrics.sorted_entries();
    s.u64(metrics.size());
    for (const auto& kv : metrics) {
      s.str(kv.first);
      s.f64(kv.second);
    }

    s.u64(env.broker.bytes_buffered());
    s.u64(env.broker.peak_bytes());
    s.u64(env.broker.total_bytes());
    s.u64(env.broker.messages());

    s.u64(g.plane->inter_node_bytes());
    s.u64(g.plane->shm_deliveries());

    if (orchestrated) {
      s.u64(g.hier->warm_pool_size());
      s.u64(g.hier->leaf_slot_count());
      save_hier_stats(s, g.hier->total_stats());
    }
  }
  s.end_section();

  if (orchestrated) {
    s.begin_section(kSecPlanner);
    for (std::size_t gi = 0; gi < cfg.groups; ++gi) {
      s.f64(st.planner->estimate_initialized(gi) ? st.planner->estimate(gi)
                                                 : 0.0);
      s.boolean(st.planner->estimate_initialized(gi));
      s.u32(st.planner->current(gi));
      s.u64(st.planner->replans(gi));
      s.u32(st.planner->version(gi));
    }
    s.end_section();
  }

  s.begin_section(kSecTop);
  s.boolean(st.top_rt != nullptr);
  s.end_section();

  return s.take();
}

std::vector<std::uint8_t> CampaignCheckpoint::with_cut(
    const std::vector<std::uint8_t>& boundary, double mark) {
  sim::Serializer s;
  s.raw(boundary.data(), boundary.size());
  s.begin_section(kSecCut);
  s.f64(mark);
  s.end_section();
  return s.take();
}

std::size_t CampaignCheckpoint::cut_trailer_bytes() {
  return sizeof(std::uint32_t) + sizeof(std::uint64_t) + sizeof(double);
}

CheckpointCut CampaignCheckpoint::restore(
    const std::vector<std::uint8_t>& blob, detail::CampaignState& st,
    ShardedCampaignResult& partial) {
  const ShardedCampaignConfig& cfg = *st.cfg;
  const bool orchestrated = cfg.hierarchy != HierarchyMode::kFixed;
  sim::Deserializer d(blob);

  if (d.u64() != kMagic) {
    throw sim::SnapshotError(
        "campaign snapshot: bad magic (not a LIFL snapshot)");
  }
  const std::uint32_t version = d.u32();
  if (version != kVersion) {
    throw sim::SnapshotError("campaign snapshot: version " +
                             std::to_string(version) +
                             " unsupported (reader is v" +
                             std::to_string(kVersion) + ")");
  }
  const std::uint64_t digest = d.u64();
  if (digest != config_digest(cfg)) {
    throw sim::SnapshotError(
        "campaign snapshot: config digest mismatch — the blob was cut from "
        "a different campaign configuration");
  }
  const std::uint32_t shards = d.u32();
  if (shards != st.sharded->shard_count()) {
    throw sim::SnapshotError(
        "campaign snapshot: shard count mismatch (blob " +
        std::to_string(shards) + ", campaign " +
        std::to_string(st.sharded->shard_count()) + ")");
  }
  const std::uint32_t groups = d.u32();
  if (groups != st.groups.size()) {
    throw sim::SnapshotError("campaign snapshot: group count mismatch");
  }
  if (d.boolean() != orchestrated) {
    throw sim::SnapshotError("campaign snapshot: hierarchy mode mismatch");
  }
  CheckpointCut cut;
  cut.round = d.u32();

  d.expect_section(kSecResult);
  partial.round_started_at = d.pod_vec<double>();
  partial.round_completed_at = d.pod_vec<double>();
  partial.round_samples = d.pod_vec<std::uint64_t>();
  partial.round_weight = d.pod_vec<double>();
  partial.round_spawned = d.pod_vec<std::uint64_t>();
  partial.round_reused = d.pod_vec<std::uint64_t>();
  partial.round_refolded = d.pod_vec<std::uint64_t>();
  partial.spawned_total = d.u64();
  partial.reused_total = d.u64();
  partial.replans = d.u64();
  partial.leaf_drains = d.u64();
  partial.peak_leaves = d.u32();
  partial.leaf_crashes = d.u64();
  partial.middle_crashes = d.u64();
  partial.refolded_updates = d.u64();
  partial.reinjected_partials = d.u64();
  partial.quorum_seals = d.u64();
  partial.quorum_abandoned = d.u64();
  partial.recovery_secs = d.f64();
  st.top_crashes = d.u64();
  st.top_recovery_secs = d.f64();
  st.ckpt_marks = d.u64();
  st.async_quota = d.u64();
  st.quota_ratio = d.f64();
  st.quota_ratio_init = d.boolean();
  st.quota_adjustments = d.u64();
  d.end_section();

  d.expect_section(kSecShards);
  for (std::size_t i = 0; i < st.sharded->shard_count(); ++i) {
    const double now = d.f64();
    const std::uint64_t dispatched = d.u64();
    st.sharded->shard(i).restore_clock(now, dispatched);
  }
  d.end_section();

  d.expect_section(kSecGroups);
  for (detail::Group& g : st.groups) {
    load(d, g.rng);
    g.participant_counter = d.u64();
    g.total_uploads = d.u64();
    g.upload_retries = d.u64();
    g.upload_drops = d.u64();
    g.upload_corruptions = d.u64();
    g.overflow_rejects = d.u64();
    g.outage_rejects = d.u64();

    g.lifecycle.sessions = d.u64();
    g.lifecycle.completed = d.u64();
    g.lifecycle.disconnects = d.u64();
    g.lifecycle.resumes = d.u64();
    g.lifecycle.chunks_sent = d.u64();
    g.lifecycle.chunks_resent = d.u64();
    g.selection_redraws = d.u64();
    g.offline_peak = d.u32();
    g.gate_wait_secs = d.f64();
    load_tier_counts(d, g.tier_selected);
    load_tier_counts(d, g.tier_completed);
    load_tier_counts(d, g.tier_disconnects);
    load_tier_counts(d, g.tier_stragglers);
    ctrl::SelectionStrategy::State sel;
    for (ctrl::TierScore& ts : sel.scores) {
      ts.dur = d.f64();
      ts.dur_init = d.boolean();
      ts.succ = d.f64();
      ts.succ_init = d.boolean();
    }
    if (g.strategy) g.strategy->restore(sel);

    dp::DataPlane::NodeEnv& env = g.plane->env(0);
    const std::uint64_t max_depth = d.u64();
    const std::uint64_t pushed = d.u64();
    const double delay = d.f64();
    env.pool.restore_stats(static_cast<std::size_t>(max_depth), pushed,
                           delay);

    const sim::Rng::State store_rng = sim::load_rng_state(d);
    shm::ObjectStoreStats os;
    os.puts = d.u64();
    os.gets = d.u64();
    os.releases = d.u64();
    os.recycled_buffers = d.u64();
    os.bytes_in_use = static_cast<std::size_t>(d.u64());
    os.peak_bytes = static_cast<std::size_t>(d.u64());
    os.pool_bytes = static_cast<std::size_t>(d.u64());
    env.store.restore(store_rng, os);

    const std::uint32_t queues = d.u32();
    if (queues != env.gateway.queue_count()) {
      throw sim::SnapshotError(
          "campaign snapshot: gateway queue count mismatch");
    }
    for (std::size_t q = 0; q < env.gateway.queue_count(); ++q) {
      load_resource(d, env.gateway.queue(q));
    }

    sim::Node& node = g.cluster->node(0);
    load_resource(d, node.cores());
    load_resource(d, node.kernel_net());
    load_resource(d, node.nic());
    std::array<double, kCpuTags> cycles{};
    for (std::size_t t = 0; t < kCpuTags; ++t) cycles[t] = d.f64();
    const double total = d.f64();
    node.cpu().restore(cycles, total);

    const std::uint64_t nmetrics = d.u64();
    std::vector<std::pair<std::string, double>> metrics;
    metrics.reserve(static_cast<std::size_t>(nmetrics));
    for (std::uint64_t m = 0; m < nmetrics; ++m) {
      std::string key = d.str();
      const double value = d.f64();
      metrics.emplace_back(std::move(key), value);
    }
    env.metrics.restore(metrics);

    const std::uint64_t bbuf = d.u64();
    const std::uint64_t bpeak = d.u64();
    const std::uint64_t btotal = d.u64();
    const std::uint64_t bmsgs = d.u64();
    env.broker.restore(static_cast<std::size_t>(bbuf),
                       static_cast<std::size_t>(bpeak), btotal, bmsgs);

    const std::uint64_t inter = d.u64();
    const std::uint64_t shm_d = d.u64();
    g.plane->restore_transfer_counters(inter, shm_d);

    if (orchestrated) {
      const std::uint64_t pool_n = d.u64();
      const std::uint64_t slot_n = d.u64();
      const StreamingHierarchy::Stats total_stats = load_hier_stats(d);
      g.hier->restore_warm(static_cast<std::size_t>(pool_n),
                           static_cast<std::size_t>(slot_n), total_stats);
    }
  }
  d.end_section();

  if (orchestrated) {
    d.expect_section(kSecPlanner);
    for (std::size_t gi = 0; gi < cfg.groups; ++gi) {
      const double est = d.f64();
      const bool init = d.boolean();
      const std::uint32_t leaves = d.u32();
      const std::uint64_t replans = d.u64();
      st.planner->restore_group(gi, est, init, leaves, replans);
      st.planner->set_version(gi, d.u32());
    }
    d.end_section();
  }

  d.expect_section(kSecTop);
  const bool top_warm = d.boolean();
  d.end_section();
  if (top_warm) {
    // A warm top sandbox, never started: the round arm re-arms it exactly
    // as it would the instance kept warm across rounds (its spawn cost was
    // paid by the run that wrote the blob).
    fl::AggregatorRuntime::Config tc;
    tc.id = 1;
    tc.node = 0;
    tc.goal = 1;
    st.top_rt = std::make_unique<fl::AggregatorRuntime>(
        *st.groups[0].plane, std::move(tc));
  }

  d.expect_section(kSecCut);
  cut.mark = d.f64();
  d.end_section();
  if (!d.at_end()) {
    throw sim::SnapshotError("campaign snapshot: trailing bytes after cut");
  }
  return cut;
}

void CampaignCheckpoint::write_file(const std::string& path,
                                    const std::vector<std::uint8_t>& blob) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("CampaignCheckpoint: cannot open " + tmp);
  }
  const std::size_t n = std::fwrite(blob.data(), 1, blob.size(), f);
  bool durable = std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  // The rename below replaces the only good blob: the new data must be on
  // stable storage *before* the swap, or an OS crash can leave the path
  // pointing at truncated bytes with the previous snapshot already gone.
  durable = durable && ::fsync(::fileno(f)) == 0;
#endif
  std::fclose(f);
  if (n != blob.size() || !durable) {
    std::remove(tmp.c_str());
    throw std::runtime_error("CampaignCheckpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("CampaignCheckpoint: cannot rename " + tmp +
                             " to " + path);
  }
#if defined(__unix__) || defined(__APPLE__)
  // Persist the rename itself (directory metadata).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    (void)::close(dfd);
  }
#endif
}

std::vector<std::uint8_t> CampaignCheckpoint::read_file(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("CampaignCheckpoint: cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> blob(size > 0 ? static_cast<std::size_t>(size)
                                          : 0);
  const std::size_t n = std::fread(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (n != blob.size()) {
    throw std::runtime_error("CampaignCheckpoint: short read from " + path);
  }
  return blob;
}

}  // namespace lifl::sys
