#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/control/selection.hpp"
#include "src/fl/aggregator_runtime.hpp"
#include "src/fl/checkpoint.hpp"
#include "src/obs/obs.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/fault_plan.hpp"
#include "src/sim/sharded_simulator.hpp"
#include "src/sim/time.hpp"
#include "src/workload/device_tier.hpp"
#include "src/workload/lifecycle.hpp"

namespace lifl::sys {

/// How the campaign builds its aggregation trees.
enum class HierarchyMode : std::uint8_t {
  kFixed,    ///< the pre-orchestrator baseline: a fixed two-level tree per
             ///< group, torn down and respawned every round (per-round
             ///< aggregator churn; every spawn pays the LIFL cold start)
  kPlanned,  ///< the streaming hierarchy orchestrator: planner-driven
             ///< multi-level trees (leaf → middle → group relay → top),
             ///< mid-round re-planning, warm cross-round instance reuse
  kAsync,    ///< asynchronous buffered aggregation (FedBuff/FedAsync): the
             ///< same orchestrator with the round barrier removed. The
             ///< whole campaign is ONE continuous arrival stream;
             ///< `rounds` becomes the number of model *versions* — the
             ///< recurring top emits a version every `uploads_per_round()`
             ///< folded updates and broadcasts it to every group's
             ///< server-version slot; leaves fold any version at the
             ///< FedAsync staleness discount 1/(1+staleness) and seal
             ///< their buffers on count or `async_deadline_secs`. Same
             ///< determinism, shard-equivalence and checkpoint guarantees
             ///< as the synchronous modes.
};

/// A mega-campaign (examples/mega_campaign) partitioned into node *groups*
/// so it can execute on the sharded simulator core.
///
/// The cluster is split into `groups` independent node groups, each with
/// its own LIFL data plane, arrival process and population slice; group 0
/// additionally hosts the round's top aggregator. Leaf aggregates cross
/// groups through `ShardedSimulator::post` with the minimum cross-group
/// network latency (`calib::kCrossShardLatencySecs` + wire + kernel
/// wake-up) — the same path and the same timestamps whether the groups run
/// on 1 shard or on N worker threads. Everything a group touches is
/// group-local, which is exactly the property that makes the sharded
/// execution (a) lock-free within a window and (b) equivalent across shard
/// counts: the wiring is fixed by `groups`, and `shards` only chooses how
/// many worker threads the groups are dealt onto.
struct ShardedCampaignConfig {
  std::size_t shards = 1;        ///< worker threads (1 = plain single core)
  std::size_t groups = 8;        ///< node groups — fixes the wiring, NOT the
                                 ///< parallelism; results are identical for
                                 ///< any `shards` given the same `groups`
  std::size_t rounds = 2;
  std::uint32_t updates_per_leaf = 200;
  std::size_t leaves_per_group = 62;
  std::size_t model_bytes = 100'000;  ///< compressed mobile update
  std::size_t population = 1'000'000;
  double peak_per_sec = 2500.0;  ///< aggregate arrival rate across groups
  double ramp_secs = 60.0;
  double diurnal_amplitude = 0.3;
  double diurnal_period_secs = 600.0;
  std::uint64_t seed = 2026;
  fl::AggTiming timing = fl::AggTiming::kEager;
  std::uint32_t gateway_cores = 2;
  std::uint32_t gateway_queues = 0;  ///< 0 = one RSS queue per gateway core

  // ---- aggregation engine (the streaming hierarchy orchestrator) -------
  HierarchyMode hierarchy = HierarchyMode::kFixed;
  /// Warm cross-round instance reuse in planned mode (false = churn A/B:
  /// every round respawns cold, like the fixed baseline).
  bool reuse = true;
  /// Mid-round re-plan period in simulated seconds (planned mode; 0
  /// disables — the round-boundary plan then holds for the whole round).
  double replan_interval_secs = 5.0;
  /// Leaf batches per middle aggregator; also the relay fan-in threshold
  /// above which the planner inserts the middle level.
  std::uint32_t middle_fanin = 8;
  double ewma_alpha = sim::calib::kEwmaAlpha;   ///< §5.2 smoothing
  double replan_hysteresis = 0.25;  ///< dead band around the current size
  /// Spawned aggregator runtimes pay the LIFL function cold start (both
  /// modes; warm re-arms never do).
  bool cold_start_spawns = true;

  // ---- asynchronous mode (hierarchy == kAsync) -------------------------
  /// Leaf-buffer seal deadline in simulated seconds (0 = seal on count
  /// only): a buffer holding at least one update this long is force-sealed
  /// so delayed stragglers cannot pin a partial batch.
  double async_deadline_secs = 0.0;
  /// Relay flush threshold in folded client updates (0 = one middle's
  /// worth: middle_fanin × updates_per_leaf).
  std::uint32_t async_flush_updates = 0;

  // ---- fault domain (orchestrated modes) -------------------------------
  /// Deterministic fault schedule (`sim::FaultPlan`): leaf/middle/top
  /// crashes mid-fold, upload drops/corruptions with client retry +
  /// capped exponential backoff, per-round gateway outage windows, and
  /// gateway overflow admission. All-zero (the default) = fault-free.
  /// Requires planned or async mode — recovery runs through the streaming
  /// hierarchy's warm pools and lease tables. Top crashes are injected in
  /// planned mode only (the async top is the version cadence itself; a
  /// process-level crash there restarts from the latest checkpoint blob).
  sim::FaultPlan::Config fault;
  /// Graceful degradation (planned mode): seal each round at this fraction
  /// of its upload target once `round_deadline_secs` has passed, instead
  /// of stalling on stragglers. 1.0 (default) waits for everything.
  /// Requires `round_deadline_secs > 0` and is incompatible with
  /// checkpointing (abandoned in-flight uploads violate the quiescent
  /// round boundary the snapshots rely on).
  double quorum = 1.0;
  /// Round deadline (simulated seconds past the round epoch) after which
  /// quorum sealing may fire.
  double round_deadline_secs = 0.0;
  /// Async mode: size each leaf buffer's seal deadline from the planner's
  /// arrival EWMA (expected buffer fill time with 2x slack) instead of the
  /// fixed `async_deadline_secs`, which becomes the upper clamp.
  bool async_adaptive_deadline = false;
  /// Async mode: auto-tune the per-version fold quota from the staleness
  /// telemetry. Each emitted version updates an EWMA of its effective/raw
  /// weight ratio (1 = no staleness discount); the next version's quota is
  /// `uploads_per_round() * ratio`, clamped to
  /// [`async_min_quota`, `uploads_per_round()`] — heavy staleness shrinks
  /// the buffer (fresher versions), clean streams keep the full quota.
  bool async_auto_quota = false;
  /// Lower clamp for the auto-tuned quota (0 = uploads_per_round() / 4).
  std::uint64_t async_min_quota = 0;

  // ---- edge-realistic clients (device tiers + flaky lifecycle) ---------
  /// Tiered device population (flagship / mid-range / IoT compute+uplink
  /// classes). All-zero (the default) keeps the legacy synthetic mobile
  /// population bitwise; when enabled the shares must sum to ~1 and each
  /// group's population slice is laid out in contiguous tier ranges.
  wl::TierMix device_tiers;
  /// Deterministic client-lifecycle schedule (`wl::LifecyclePlan`):
  /// mid-upload disconnects with bounded per-client offline queues and
  /// chunk-wise resumable uploads, plus optional connectivity/charging
  /// session gates. Disabled by default. Works in all three hierarchy
  /// modes; incompatible with wire-level upload faults (drop / corruption /
  /// outage / overflow — the chunked session layer supersedes the
  /// whole-stream retry model).
  wl::LifecyclePlan::Config lifecycle;
  /// Client-selection strategy for the arrival chain. `kRandom` keeps the
  /// legacy hash oracle bitwise; `kScored` / `kClusterScan` require a
  /// tiered population and learn from per-tier completion telemetry.
  ctrl::SelectorPolicy selector = ctrl::SelectorPolicy::kRandom;
  ctrl::SelectionStrategy::Config selection;

  // ---- stragglers (both modes; the fig9 sync-vs-async A/B knob) --------
  /// Deterministic fraction of arrivals whose upload is delayed by
  /// `straggler_delay_secs` (hash of the group-local arrival sequence, so
  /// identical for every shard count). Synchronous rounds stall on them;
  /// async versions keep bumping on count and fold them late at the
  /// staleness discount.
  double straggler_fraction = 0.0;
  double straggler_delay_secs = 60.0;

  // ---- checkpoint/restore (sys::CampaignCheckpoint) --------------------
  /// Snapshot cadence on the *global simulated-time grid* k·every (0 =
  /// off). Each crossed mark bills the CheckpointManager cost model in-sim
  /// (marshal CPU on group 0's node + storage latency off it) and emits a
  /// blob at the next quiescent barrier. Resuming from any emitted blob is
  /// bitwise identical to the uninterrupted run — see
  /// tests/campaign_checkpoint_test.cpp.
  double checkpoint_every_secs = 0.0;
  /// When set, the latest blob is kept at this path (atomic replace), so a
  /// crashed campaign restarts from its most recent mark.
  std::string checkpoint_path;
  /// Optional in-process sink for every emitted blob (tests/benches): called
  /// with the blob, the in-progress round, and the mark it cuts at.
  std::function<void(const std::vector<std::uint8_t>&, std::uint32_t round,
                     double mark)>
      on_checkpoint;
  /// Resume source: a blob file, or an in-memory blob (takes precedence).
  /// The blob's config digest and shard count must match this config.
  std::string resume_path;
  const std::vector<std::uint8_t>* resume_blob = nullptr;
  /// Cost model for the snapshot writes (cadence field is ignored — the
  /// mark grid above decides when).
  fl::CheckpointManager::Config checkpoint_cost;

  // ---- shard synchronization (src/sim/sharded_simulator.hpp) -----------
  /// How the worker shards synchronize. `kConservative` is the classic
  /// fixed-lookahead barrier; `kAdaptive` widens barrier windows through
  /// campaign-aware outbound promises (each shard publishes a lower bound
  /// on its next cross-group delivery derived from its groups' arrival
  /// chains), collapsing the empty windows of diurnal troughs; and
  /// `kOptimistic` additionally speculates past even those bounds when the
  /// mailboxes have been quiet, journaling rollback commits through the
  /// checkpoint codec and replaying deterministically when a straggling
  /// cross-post lands in a shard's past. All three produce bitwise
  /// identical results for any shard count (tests/sync_equivalence_test);
  /// with `shards == 1` they are the same code path. Optimistic mode is
  /// incompatible with `quorum < 1` (rollback replays a round from its
  /// boundary commit, and quorum runs reject the checkpoint machinery the
  /// commits reuse).
  sim::SyncMode sync_mode = sim::SyncMode::kConservative;
  /// Speculation/widening cap in lookahead quanta past the conservative
  /// horizon (see sim::ShardedSimulator::Config::spec_max_lookaheads).
  std::uint32_t spec_max_lookaheads = 256;
  /// Optimistic mode: simulated-seconds cadence of the internal rollback
  /// commits (round boundaries always commit). Denser commits mean less
  /// replay per rollback but more encode wall time. When checkpointing is
  /// on (`checkpoint_every_secs > 0`), commits ride the checkpoint marks
  /// instead and this knob is ignored.
  double spec_commit_every_secs = 60.0;

  // ---- observability (src/obs) -----------------------------------------
  /// Sim-time tracing + typed metrics. Strictly passive: recording never
  /// schedules sim events, so enabling it leaves campaign results bitwise
  /// identical (tests/obs_campaign_test.cpp) for every shard count. Trace
  /// state is not checkpointed — a resumed run re-emits from the cut.
  obs::Config obs;

  std::size_t uploads_per_round() const {
    return groups * leaves_per_group * updates_per_leaf;
  }
  std::size_t per_group_target() const {
    return leaves_per_group * updates_per_leaf;
  }
};

/// Per-group aggregates used by the shard-equivalence test: every value is
/// produced by group-local event order only, so it must be *identical*
/// (bitwise, not approximately) across shard counts.
struct ShardedGroupStats {
  std::uint64_t uploads = 0;        ///< client uploads launched
  std::uint64_t pool_pushed = 0;    ///< updates that landed in the node pool
  double gateway_busy_secs = 0.0;   ///< gateway busy integral
  double gateway_wait_secs = 0.0;   ///< gateway queueing
  double cpu_cycles = 0.0;          ///< node CPU ledger total
};

/// Per-round (sync) or per-model-version (async) and whole-campaign
/// telemetry. In async mode the `round_*` vectors hold one entry per
/// *emitted model version*; `round_spawned`/`round_reused` attribute the
/// stream's churn to its first entry (spawns happen while the initial
/// fleet ramps; steady state spawns zero — the entries after the first).
struct ShardedCampaignResult {
  std::vector<double> round_started_at;    ///< round epoch (sim s)
  std::vector<double> round_completed_at;  ///< top aggregate landed (sim s)
  std::vector<std::uint64_t> round_samples;  ///< global FedAvg weight (raw)
  /// Effective (staleness-discounted) FedAvg weight per round/version.
  /// Equals `round_samples` bitwise in synchronous mode and in an async
  /// run with no stale folds; the gap is exactly the staleness discount.
  std::vector<double> round_weight;
  /// Aggregator-runtime churn per round, across all groups plus the top:
  /// `spawned` counts constructions (each pays the cold start when
  /// `cold_start_spawns`), `reused` counts warm in-place re-arms. With the
  /// orchestrator (planned mode + reuse), steady-state rounds spawn zero
  /// new runtimes — see tests/streaming_hierarchy_test.cpp.
  std::vector<std::uint64_t> round_spawned;
  std::vector<std::uint64_t> round_reused;
  /// Client updates re-folded from aborted leases per round (async: total
  /// attributed to the first version entry) — the lossless-recovery work
  /// the round performed. Zero everywhere in a fault-free run.
  std::vector<std::uint64_t> round_refolded;
  std::vector<ShardedGroupStats> groups;
  std::uint64_t spawned_total = 0;
  std::uint64_t reused_total = 0;
  std::uint64_t replans = 0;      ///< mid-round plan changes applied
  std::uint64_t leaf_drains = 0;  ///< partial accumulators drained on shrink
  std::uint32_t peak_leaves = 0;  ///< max concurrent leaves in any group
  std::uint64_t events = 0;       ///< dispatched across all shards
  std::uint64_t cross_posts = 0;  ///< cross-shard mailbox traffic
  std::uint64_t windows = 0;      ///< barrier windows actually run
  /// Barrier windows proven empty and skipped by adaptive/optimistic
  /// horizon widening, in conservative-window units (0 under
  /// kConservative). `windows + windows_skipped` ≈ the conservative count.
  std::uint64_t windows_skipped = 0;
  /// Optimistic speculation windows invalidated by a straggling cross-post
  /// and rolled back + replayed (0 unless sync_mode == kOptimistic).
  std::uint64_t rollbacks = 0;
  /// Snapshot marks whose cost model was billed in-sim. Deterministic and
  /// part of the snapshot itself, so a resumed run reports the same total
  /// as the uninterrupted one.
  std::uint64_t checkpoint_marks = 0;
  /// Blobs this *process* emitted / their byte total / encode wall time.
  /// Process-local by design: a resumed run does not re-emit the blobs the
  /// pre-crash process already persisted.
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_bytes = 0;
  double checkpoint_encode_secs = 0.0;

  // ---- fault/recovery telemetry (all zero in a fault-free run) ---------
  std::uint64_t faults_injected = 0;  ///< crashes + drops + corruptions +
                                      ///< outage/overflow rejects
  std::uint64_t leaf_crashes = 0;     ///< leaf runtimes crashed + recovered
  std::uint64_t middle_crashes = 0;   ///< middle runtimes crashed + recovered
  std::uint64_t top_crashes = 0;      ///< top runtimes crashed + recovered
  std::uint64_t refolded_updates = 0;   ///< client updates re-folded from
                                        ///< aborted leaf leases
  std::uint64_t reinjected_partials = 0;  ///< leaf partials re-injected into
                                          ///< replacement middles/tops
  std::uint64_t upload_retries = 0;     ///< client retransmissions scheduled
  std::uint64_t upload_drops = 0;       ///< attempts lost on the wire
  std::uint64_t upload_corruptions = 0;  ///< attempts arrived bit-flipped
  std::uint64_t overflow_rejects = 0;   ///< gateway admission rejections
  std::uint64_t outage_rejects = 0;     ///< attempts hitting an outage window
  std::uint64_t quorum_seals = 0;       ///< rounds sealed at quorum
  std::uint64_t quorum_abandoned = 0;   ///< uploads abandoned by those seals
  double recovery_secs = 0.0;  ///< replacement spawn time paid (cold starts;
                               ///< warm re-arms recover for free)

  // ---- client lifecycle / selection telemetry --------------------------
  /// Per-device-tier participation (all zero unless the population is
  /// tiered). Selected counts arrival-chain picks; completed counts
  /// delivered updates; disconnects/stragglers attribute session drops and
  /// straggler delays to the tier that suffered them.
  struct TierStats {
    std::uint64_t selected = 0;
    std::uint64_t completed = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t stragglers = 0;
  };
  std::array<TierStats, wl::kTierCount> tiers{};
  std::uint64_t disconnects = 0;       ///< mid-upload session drops
  std::uint64_t resumed_uploads = 0;   ///< reconnect+resume events
  std::uint64_t chunks_sent = 0;       ///< upload chunks acked end-to-end
  std::uint64_t chunks_resent = 0;     ///< acked chunks that were re-sends
  std::uint64_t selection_redraws = 0; ///< picks refused (full offline queue)
  std::uint64_t offline_queue_peak = 0;  ///< max parked updates, any client
  double gate_wait_secs = 0.0;  ///< connectivity/charge gate delay total
  /// Async auto-quota telemetry: quota changes applied, and the quota in
  /// force when the stream ended (uploads_per_round() when tuning is off).
  std::uint64_t quota_adjustments = 0;
  std::uint64_t async_quota_final = 0;

  // ---- observability ---------------------------------------------------
  /// Per-shard barrier telemetry, always filled (the sharded core counts
  /// windows regardless of tracing): conservative windows run, windows in
  /// which the shard dispatched nothing, and wall seconds the shard spent
  /// parked at barriers waiting for the slowest shard.
  std::vector<std::uint64_t> shard_windows;
  std::vector<std::uint64_t> shard_empty_windows;
  std::vector<double> shard_idle_secs;
  /// The run's trace rings + metric registry when `cfg.obs` enabled them;
  /// null otherwise. Shared so the result stays copy/move friendly.
  std::shared_ptr<obs::CampaignObs> obs;

  double wall_secs = 0.0;
  double sim_secs = 0.0;          ///< final simulated time (max over groups)
};

/// Run the campaign. Deterministic: same config (including `groups`) =>
/// same result for any `shards`; see tests/sharded_sim_test.cpp.
ShardedCampaignResult run_sharded_campaign(const ShardedCampaignConfig& cfg);

/// Write the run's Perfetto-loadable Chrome trace JSON to `path`. Throws
/// std::logic_error if the run was not traced (`cfg.obs.trace`).
void write_campaign_trace(const ShardedCampaignResult& result,
                          const std::string& path);

/// Write the per-round/per-version timeseries plus a final summary row
/// (registry counters/histograms, per-shard window stats) as JSON lines.
/// Works for any run — registry fields appear only when metrics were on.
void write_campaign_metrics_jsonl(const ShardedCampaignResult& result,
                                  const std::string& path);

}  // namespace lifl::sys
