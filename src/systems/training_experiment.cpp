#include "src/systems/training_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/control/selector.hpp"

namespace lifl::sys {

namespace calib = sim::calib;

namespace {

/// Mutable state of one run, owned on the stack of run() and shared with
/// the event closures.
struct RunState {
  sim::Simulator sim;
  std::unique_ptr<sim::Cluster> cluster;
  std::unique_ptr<dp::DataPlane> plane;
  std::unique_ptr<AggregationService> service;
  std::unique_ptr<ctrl::Selector> selector;
  wl::ClientPopulation population;
  wl::ArrivalTracker arrivals{60.0};
  sim::Rng rng;
  TrainingResult result;
  double cpu_at_round_start = 0.0;
  bool done = false;
};

double total_cpu_secs(RunState& st) {
  st.plane->settle_idle_costs();
  return st.cluster->total_cpu().total_seconds(calib::kCpuHz);
}

}  // namespace

TrainingResult TrainingExperiment::run() {
  RunState st;
  st.rng = sim::Rng(cfg_.seed);
  st.cluster = std::make_unique<sim::Cluster>(st.sim, cfg_.cluster_nodes);
  st.plane = std::make_unique<dp::DataPlane>(*st.cluster, system_.plane,
                                             st.rng.split(1));
  st.service =
      std::make_unique<AggregationService>(*st.cluster, *st.plane, system_);
  ctrl::Selector::Config sel_cfg;
  sel_cfg.heartbeat_timeout_secs = cfg_.heartbeat_timeout_secs;
  st.selector = std::make_unique<ctrl::Selector>(st.sim, sel_cfg);
  sim::Rng pop_rng = st.rng.split(2);
  st.population = wl::ClientPopulation::synthetic(
      cfg_.population, cfg_.mobile_clients, pop_rng);
  st.result.system = system_.name;

  // Serverful static fleet: provisioned once for peak load and kept warm.
  if (system_.scaling == ScalingMode::kAlwaysOn) {
    const std::size_t data_nodes =
        cfg_.cluster_nodes > 1 ? cfg_.cluster_nodes - 1 : 1;
    const auto per_node_peak = static_cast<std::uint32_t>(std::ceil(
        static_cast<double>(cfg_.active_per_round) /
        static_cast<double>(data_nodes)));
    const std::uint32_t leaves = static_cast<std::uint32_t>(std::ceil(
        static_cast<double>(per_node_peak) /
        static_cast<double>(system_.updates_per_leaf)));
    std::vector<std::uint32_t> fleet(cfg_.cluster_nodes, leaves + 1);
    fleet[system_.dedicated_top_node] = 2;  // top + spare
    st.service->prewarm(fleet);
  }

  // ---- Fig. 10(b)/(e) sampler: active aggregators over time.
  auto sampler = std::make_shared<std::function<void()>>();
  *sampler = [&st, this, wsampler = std::weak_ptr<std::function<void()>>(
                             sampler)]() {
    if (st.done) return;
    // Serverful fleets count their parked (still-provisioned) instances;
    // serverless pods only count while they actually run a task.
    std::size_t active = st.service->live_instances();
    if (system_.scaling == ScalingMode::kAlwaysOn) {
      active += st.service->warm_instances();
    }
    st.result.active_aggs.emplace_back(st.sim.now(), active);
    if (auto s = wsampler.lock()) {
      st.sim.schedule_daemon_after(cfg_.sample_period_secs, *s);
    }
  };
  st.sim.schedule_daemon_after(cfg_.sample_period_secs, *sampler);

  // ---- Round driver.
  auto start_round = std::make_shared<std::function<void(std::uint32_t)>>();
  *start_round = [&st, this, start_round](std::uint32_t round) {
    const double t0 = st.sim.now();
    st.cpu_at_round_start = total_cpu_secs(st);

    // Client selection (diversity draw over the population).
    const auto selected =
        st.population.sample(cfg_.active_per_round, st.rng);

    // Placement: map each incoming update to a worker node (§5.1).
    const auto assignment = st.service->place_updates(selected.size());
    std::vector<std::uint32_t> counts(cfg_.cluster_nodes, 0);
    for (const auto node : assignment) counts[node]++;

    // Arm the aggregation hierarchy for this round (§5.2).
    st.service->arm(
        counts, round + 1, cfg_.model.bytes(),
        [&st, this, round, t0, start_round](
            const AggregationService::BatchResult& batch) {
          // Evaluation task on the completing node (Fig. 4 "Eval.").
          sim::Node& eval_node = st.cluster->node(
              batch.global_update.producer != 0
                  ? st.plane->node_of(batch.global_update.producer)
                        .value_or(system_.dedicated_top_node)
                  : system_.dedicated_top_node);
          const double eval_cycles =
              calib::kEvalSecs * eval_node.config().cpu_hz;
          eval_node.cores().acquire(calib::kEvalSecs, [&st, this, round, t0,
                                                       start_round, batch,
                                                       &eval_node,
                                                       eval_cycles]() {
            eval_node.cpu().add(sim::CostTag::kEvaluation, eval_cycles);

            RoundRecord rec;
            rec.round = round + 1;
            rec.started_at = t0;
            rec.completed_at = st.sim.now();
            rec.act = batch.act();
            rec.cpu_secs = total_cpu_secs(st) - st.cpu_at_round_start;
            rec.accuracy = cfg_.curve.sample_accuracy(round + 1, st.rng);
            rec.created = batch.created;
            rec.reused = batch.reused;
            rec.nodes_used = batch.nodes_used;
            st.result.rounds.push_back(rec);
            st.result.final_accuracy = rec.accuracy;

            st.service->finish_batch();

            const double cpu_hours = total_cpu_secs(st) / 3600.0;
            if (st.result.secs_to_target < 0 &&
                cfg_.curve.mean_accuracy(round + 1) >=
                    cfg_.target_accuracy) {
              st.result.secs_to_target = st.sim.now();
              st.result.cpu_hours_to_target = cpu_hours;
            }
            const bool out_of_budget =
                st.sim.now() > cfg_.max_hours * 3600.0;
            if (round + 1 < cfg_.max_rounds && !out_of_budget) {
              (*start_round)(round + 1);
            } else {
              st.done = true;
            }
          });
        });

    // Dispatch the selected clients: hibernation + local training, then the
    // upload lands at the assigned node's gateway.
    auto dispatch = [&st, this](const wl::ClientProfile& profile,
                                sim::NodeId dst, std::uint32_t version) {
      const double delay = wl::ClientPopulation::round_delay_secs(
          profile, cfg_.base_train_secs, st.rng);
      fl::ModelUpdate u;
      u.model_version = version;
      u.producer = profile.id;
      u.sample_count = profile.samples;
      u.logical_bytes = cfg_.model.bytes();
      const double uplink = profile.uplink_bytes_per_sec;
      st.sim.schedule_after(delay, [&st, dst, u, uplink]() mutable {
        u.created_at = st.sim.now();
        st.selector->report_done(u.producer);
        st.plane->client_upload(dst, std::move(u), uplink,
                                [&st]() { st.arrivals.record(st.sim.now()); });
      });
    };
    for (std::size_t i = 0; i < selected.size(); ++i) {
      const auto& profile = st.population[selected[i]];
      const sim::NodeId dst = assignment[i];
      if (cfg_.dropout_rate > 0 && st.rng.uniform() < cfg_.dropout_rate) {
        // The client goes silent mid-round. Its keep-alive heartbeats lapse
        // (§3); the selector detects the failure and the coordinator
        // substitutes a spare client from the over-provisioned cohort,
        // which runs a fresh local round.
        st.selector->track(profile.id,
                           [&st, this, dst, round]() {
          const auto spare = st.population.sample(1, st.rng);
          const auto& spare_profile = st.population[spare.front()];
          const double delay = wl::ClientPopulation::round_delay_secs(
              spare_profile, cfg_.base_train_secs, st.rng);
          fl::ModelUpdate u;
          u.model_version = round + 1;
          u.producer = spare_profile.id;
          u.sample_count = spare_profile.samples;
          u.logical_bytes = cfg_.model.bytes();
          const double uplink = spare_profile.uplink_bytes_per_sec;
          st.sim.schedule_after(delay, [&st, dst, u, uplink]() mutable {
            u.created_at = st.sim.now();
            st.plane->client_upload(dst, std::move(u), uplink, [&st]() {
              st.arrivals.record(st.sim.now());
            });
          });
        });
        continue;
      }
      // Healthy clients heartbeat throughout training and report on upload;
      // we only model the failure path explicitly to keep event counts low.
      dispatch(profile, dst, round + 1);
    }
  };

  (*start_round)(0);
  st.sim.run();

  // Break the driver's self-reference cycle now that the run is over.
  *start_round = nullptr;
  *sampler = nullptr;

  st.result.wall_secs = st.sim.now();
  st.result.cpu_hours_total = total_cpu_secs(st) / 3600.0;
  st.result.arrivals_per_min = st.arrivals.bins();
  st.result.failures_detected = st.selector->failures_detected();
  return st.result;
}

}  // namespace lifl::sys
