#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/control/agent.hpp"
#include "src/control/hierarchy.hpp"
#include "src/control/metrics_server.hpp"
#include "src/control/placement.hpp"
#include "src/control/tag.hpp"
#include "src/dataplane/dataplane.hpp"
#include "src/fl/aggregator_runtime.hpp"
#include "src/systems/system_config.hpp"

namespace lifl::sys {

/// The model-aggregation service of one FL system (SF / SL / SL-H / LIFL):
/// owns the per-node agents, the placement engine, the hierarchy planner
/// and the metrics server, and orchestrates one *batch* of updates at a
/// time — one synchronous-FL round's aggregation (Fig. 6).
///
/// The orchestration flow per batch:
///  1. `place_updates` bin-packs the incoming updates onto worker nodes
///     under residual-capacity constraints (§5.1),
///  2. `arm` plans the per-node two-level trees plus the top aggregator
///     (§5.2) and spawns/reuses instances per the system's scaling mode
///     (§5.3, cascading cold starts for reactive control planes),
///  3. updates arrive in node pools, leaves pull eagerly or lazily (§5.4),
///     intermediates flow leaf→middle→top over the data plane, and the top
///     aggregator's output completes the batch,
///  4. `finish_batch` parks (warm) or terminates instances per policy.
class AggregationService {
 public:
  struct BatchResult {
    double armed_at = 0.0;
    double first_arrival_at = -1.0;  ///< earliest leaf-side arrival
    double completed_at = -1.0;
    fl::ModelUpdate global_update;
    std::uint32_t updates = 0;
    std::uint32_t created = 0;       ///< instances cold-started for this batch
    std::uint32_t reused = 0;        ///< instances reused for this batch
    std::size_t nodes_used = 0;
    /// Real-tensor fold-path telemetry (global TensorPool deltas over the
    /// batch): buffers served from the recycle pool vs heap-allocated.
    /// Steady-state rounds must show tensor_allocs == 0 — the zero-alloc
    /// discipline of §4.1 extended to the ML payloads.
    std::uint64_t tensor_pool_hits = 0;
    std::uint64_t tensor_allocs = 0;

    /// Aggregation completion time of the batch.
    double act() const noexcept { return completed_at - armed_at; }
  };

  using CompletionFn = std::function<void(const BatchResult&)>;

  AggregationService(sim::Cluster& cluster, dp::DataPlane& plane,
                     SystemConfig cfg);
  ~AggregationService();
  AggregationService(const AggregationService&) = delete;
  AggregationService& operator=(const AggregationService&) = delete;

  /// Current capacity view for the placement engine: MC_i with k_{i,t} and
  /// E_{i,t} from the metrics server.
  std::vector<ctrl::NodeCapacity> capacities() const;

  /// Assign `n` incoming updates to nodes (returns one NodeId per update).
  std::vector<sim::NodeId> place_updates(std::size_t n) const;

  /// Arm aggregation of the updates counted per node in `counts_per_node`
  /// (they arrive in the node pools, e.g. via client uploads). The batch
  /// completes when the top aggregator has folded every node's intermediate.
  void arm(const std::vector<std::uint32_t>& counts_per_node,
           std::uint32_t model_version, std::size_t update_bytes,
           CompletionFn on_complete);

  /// The TAG describing the currently armed hierarchy (Appendix D).
  const ctrl::Tag& current_tag() const noexcept { return tag_; }

  /// Pre-create warm instances per node (serverful static fleets; warm
  /// pools for reuse experiments).
  void prewarm(const std::vector<std::uint32_t>& per_node);

  /// Park or terminate the batch's instances per the system policy.
  void finish_batch();

  ctrl::NodeAgent& agent(sim::NodeId node) { return *agents_.at(node); }
  ctrl::MetricsServer& metrics() noexcept { return metrics_; }
  const SystemConfig& config() const noexcept { return cfg_; }

  /// Live (in-use) instances across all nodes.
  std::size_t live_instances() const;
  /// Warm parked instances across all nodes.
  std::size_t warm_instances() const;
  std::uint32_t total_created() const;
  std::uint32_t total_reused() const;

 private:
  fl::ParticipantId fresh_id() { return next_id_++; }
  /// Node a higher-level aggregator pod lands on when its inputs are queued
  /// on `data_node`: the data node itself under locality-aware placement
  /// (§5.1), the least-loaded node under locality-agnostic layouts.
  sim::NodeId pod_placement_node(sim::NodeId data_node) const;
  sim::NodeId choose_top_node(
      const std::vector<std::uint32_t>& counts_per_node) const;
  void arm_static(const ctrl::HierarchyPlan& plan, sim::NodeId top_node);
  void arm_with_promotion(const ctrl::HierarchyPlan& plan);
  void on_leaf_output(sim::NodeId node, fl::AggregatorRuntime& leaf,
                      fl::ModelUpdate u);
  void on_intermediate_output(sim::NodeId node, fl::AggregatorRuntime& agg,
                              fl::ModelUpdate u);
  void on_global(fl::ModelUpdate u);
  fl::AggregatorRuntime& spawn_leaf(sim::NodeId node, std::uint32_t goal,
                                    fl::ParticipantId consumer,
                                    bool promote_wiring);

  sim::Cluster& cluster_;
  dp::DataPlane& plane_;
  SystemConfig cfg_;
  ctrl::PlacementEngine placer_;
  ctrl::HierarchyPlanner planner_;
  ctrl::MetricsServer metrics_;
  std::vector<std::unique_ptr<ctrl::NodeAgent>> agents_;
  ctrl::Tag tag_;

  // Current batch.
  struct NodeBatch {
    std::uint32_t leaves = 0;          ///< leaves planned on the node
    bool wants_middle = false;
    fl::ParticipantId middle_id = 0;   ///< 0 until promoted/spawned
    fl::AggregatorRuntime* middle = nullptr;
  };
  std::vector<fl::AggregatorRuntime*> batch_instances_;
  std::vector<NodeBatch> node_batches_;
  fl::AggregatorRuntime* top_ = nullptr;
  fl::ParticipantId top_id_ = 0;      ///< 0 until promoted/spawned
  std::uint32_t top_goal_ = 0;
  std::uint32_t model_version_ = 0;
  std::size_t update_bytes_ = 0;
  BatchResult pending_;
  CompletionFn on_complete_;
  std::uint32_t created_at_arm_ = 0;
  std::uint32_t reused_at_arm_ = 0;
  std::uint64_t pool_hits_at_arm_ = 0;
  std::uint64_t pool_misses_at_arm_ = 0;
  std::uint32_t promotions_ = 0;      ///< within-round role conversions (§5.3)

  fl::ParticipantId next_id_ = 1;
};

}  // namespace lifl::sys
