#include "src/systems/sharded_campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/control/campaign_planner.hpp"
#include "src/dataplane/config.hpp"
#include "src/dataplane/dataplane.hpp"
#include "src/dataplane/resumable_upload.hpp"
#include "src/sim/node.hpp"
#include "src/sim/random.hpp"
#include "src/sim/sharded_simulator.hpp"
#include "src/systems/campaign_checkpoint.hpp"
#include "src/systems/campaign_state.hpp"
#include "src/systems/streaming_hierarchy.hpp"
#include "src/workload/population.hpp"

namespace lifl::sys {

namespace calib = sim::calib;

using detail::CampaignState;
using detail::Group;

namespace {

/// Latency of a relay/leaf-aggregate transfer between node groups: minimum
/// cross-group latency (propagation + switch + kernel wake-up) plus wire
/// time plus the fixed kernel receive cost. Always >= the sharded
/// simulator's lookahead, which is what makes the conservative windows
/// sound for this workload.
double cross_latency_secs(std::size_t bytes) {
  return calib::kCrossShardLatencySecs +
         static_cast<double>(bytes) / calib::kNicBytesPerSec +
         calib::kKernelFixedCycles / calib::kCpuHz;
}

/// Injects one relayed group aggregate into the top aggregator. Runs on the
/// top's shard; the update was detached from its source group (no lease, no
/// tensor) before crossing.
struct TopInject {
  CampaignState* st;
  fl::ModelUpdate u;
  void operator()() { st->top->inject(std::move(u)); }
};

/// Group-output hook (a leaf in fixed mode, the group relay in planned
/// mode): detach the aggregate from its group and post it to the top's
/// shard with the cross-group latency. Identical for every group (including
/// group 0, whose post degenerates to a local schedule), so the wiring does
/// not depend on the group->shard mapping.
struct GroupRelay {
  CampaignState* st;
  std::size_t group;
  void operator()(fl::ModelUpdate u) const {
    u.lease.reset();
    u.tensor.reset();
    Group& g = st->groups[group];
    ++g.relays_done;  // feeds the shard's outbound promise (sync modes)
    const double t = g.sim->now() + cross_latency_secs(u.logical_bytes);
    st->sharded->post(g.shard, st->groups[0].shard, t,
                      TopInject{st, std::move(u)});
  }
};

/// Applies a quorum shortfall to the top's folded-count goal. Posted from
/// the sealing group's shard to the top's shard, so the shrink lands in the
/// top's own event order (shard-count invariant). The top goal may shrink
/// to the point the already-folded count satisfies it, completing the
/// round immediately.
struct TopShrink {
  CampaignState* st;
  std::uint64_t abandoned;
  void operator()() const {
    st->top_goal -= std::min(abandoned, st->top_goal);
    st->top->set_goal(static_cast<std::uint32_t>(st->top_goal));
  }
};

/// One upload attempt under the fault plan: outage window → gateway
/// admission → wire drop → corruption, in that order; any fault schedules
/// a retransmission with capped exponential backoff + deterministic
/// per-client jitter (the client-side retry machinery). A corrupted
/// attempt is *delivered* — the consumer's integrity check discards it —
/// and retried. `seq` is the group-local arrival sequence; all draws hash
/// (group, seq, attempt), so the schedule is shard-invariant and replays
/// bitwise from a checkpoint.
void attempt_upload(CampaignState* st, Group* g, fl::ModelUpdate u,
                    double uplink, std::uint64_t seq, std::uint32_t attempt,
                    sim::Task done = {}) {
  const sim::FaultPlan& fp = st->faults;
  const auto retry = [&](fl::ModelUpdate again) {
    ++g->upload_retries;
    g->obs.instant(g->sim->now(), obs::Ev::kUploadRetry,
                   static_cast<std::uint32_t>(again.producer), attempt + 1);
    g->obs.count_id(&obs::Ids::upload_retries);
    g->obs.observe_id(&obs::Ids::retry_depth,
                      static_cast<double>(attempt + 1));
    const double d = fp.backoff_secs(g->id, seq, attempt);
    g->sim->schedule_after(
        d, [st, g, again = std::move(again), uplink, seq, attempt,
            done = std::move(done)]() mutable {
          attempt_upload(st, g, std::move(again), uplink, seq, attempt + 1,
                         std::move(done));
        });
  };
  double ob = 0.0, oe = 0.0;
  if (fp.outage_window(g->id, g->round, &ob, &oe)) {
    const double now = g->sim->now();
    if (now >= g->epoch + ob && now < g->epoch + oe) {
      ++g->outage_rejects;
      retry(std::move(u));
      return;
    }
  }
  const std::size_t limit = fp.config().gateway_overflow_depth;
  if (limit > 0 && g->plane->env(0).gateway.queue_length() >= limit) {
    ++g->overflow_rejects;
    retry(std::move(u));
    return;
  }
  if (fp.upload_dropped(g->id, seq, attempt)) {
    ++g->upload_drops;
    retry(std::move(u));
    return;
  }
  if (fp.upload_corrupted(g->id, seq, attempt)) {
    ++g->upload_corruptions;
    fl::ModelUpdate bad = u;
    bad.corrupted = true;
    retry(std::move(u));
    g->plane->client_upload(0, std::move(bad), uplink);
    return;
  }
  g->plane->client_upload(0, std::move(u), uplink, std::move(done));
}

/// Pick the arrival's client through the group's selection strategy,
/// refusing clients whose offline queue (live upload sessions) is at the
/// lifecycle cap: refused picks re-draw deterministically (hashed probes,
/// then a linear scan), so the choice is a pure function of group-local
/// state and stays shard-invariant.
std::size_t pick_client(CampaignState* st, Group* g, std::uint64_t seq) {
  const bool lc = st->lifecycle.enabled();
  const std::uint32_t cap =
      static_cast<std::uint32_t>(st->cfg->lifecycle.offline_queue_cap);
  const auto has_room = [&](std::size_t i) {
    auto it = g->live_sessions.find(i);
    return it == g->live_sessions.end() || it->second < cap;
  };
  std::size_t idx = 0;
  for (std::uint64_t probe = 0; probe < 64; ++probe) {
    idx = g->strategy->pick(g->population, g->round, seq, probe);
    if (!lc || has_room(idx)) return idx;
    ++g->selection_redraws;
  }
  for (std::size_t off = 1; off <= g->population.size(); ++off) {
    const std::size_t j = (idx + off) % g->population.size();
    if (has_room(j)) {
      ++g->selection_redraws;
      return j;
    }
  }
  throw std::runtime_error(
      "sharded campaign: every client's offline queue is at capacity");
}

/// Launch one lifecycle-governed upload: optional duty-cycle gate wait and
/// straggler delay, then a chunk-wise `dp::ResumableUpload` session whose
/// completion feeds the per-tier telemetry (and the selection strategy)
/// and releases the client's offline-queue slot.
void launch_session(CampaignState* st, Group* g, fl::ModelUpdate u,
                    const wl::ClientProfile& profile, std::size_t idx,
                    std::uint64_t seq, bool straggler) {
  const ShardedCampaignConfig& cfg = *st->cfg;
  const auto ti = static_cast<std::size_t>(profile.tier);
  const double selected_at = g->sim->now();
  ++g->live_sessions[idx];

  dp::ResumableUpload::Config rc;
  rc.node = 0;
  rc.uplink_bytes_per_sec = profile.uplink_bytes_per_sec;
  rc.plan = &st->lifecycle;
  rc.group = g->id;
  rc.seq = seq;
  rc.rate_scale = wl::tier_traits(profile.tier).disconnect_scale;
  rc.counters = &g->lifecycle;
  rc.obs = g->obs;
  rc.on_complete = [g, idx, ti, selected_at](double, std::uint32_t) {
    ++g->tier_completed[ti];
    if (g->strategy) {
      g->strategy->report(static_cast<wl::DeviceTier>(ti),
                          g->sim->now() - selected_at, /*success=*/true);
    }
    auto it = g->live_sessions.find(idx);
    if (it != g->live_sessions.end() && --it->second == 0) {
      g->live_sessions.erase(it);
    }
  };
  rc.on_disconnect = [g, idx, ti]() {
    ++g->tier_disconnects[ti];
    const std::uint32_t parked = ++g->parked[idx];
    g->offline_peak = std::max(g->offline_peak, parked);
  };
  rc.on_resume = [g, idx]() {
    auto it = g->parked.find(idx);
    if (it != g->parked.end() && --it->second == 0) g->parked.erase(it);
  };

  double delay = 0.0;
  if (cfg.lifecycle.session_gates) {
    delay = st->lifecycle.gate_delay(g->id, idx, profile.tier, selected_at);
    g->gate_wait_secs += delay;
  }
  if (straggler) delay += cfg.straggler_delay_secs;
  if (delay > 0.0) {
    dp::DataPlane* plane = g->plane.get();
    g->sim->schedule_after(
        delay, [plane, u = std::move(u), rc = std::move(rc)]() mutable {
          dp::ResumableUpload::launch(*plane, std::move(u), std::move(rc));
        });
  } else {
    dp::ResumableUpload::launch(*g->plane, std::move(u), std::move(rc));
  }
}

/// One open-loop arrival: upload a lazily derived client's update into the
/// group's node, then chain the next arrival. 16 bytes — Task-inline.
///
/// The version stamp is the version the client trained from: the group's
/// round in synchronous modes, the group's server-version slot in async
/// mode. Stragglers — a deterministic hash of the group-local arrival
/// sequence, so the choice is identical for every shard count — keep that
/// stamp but deliver `straggler_delay_secs` late: a synchronous round
/// stalls on them, an async version keeps bumping on count and folds them
/// later at the staleness discount.
struct ArrivalFn {
  CampaignState* st;
  Group* g;
  void operator()() const {
    const ShardedCampaignConfig& cfg = *st->cfg;
    const std::uint64_t seq = g->participant_counter++;
    const std::size_t idx =
        g->strategy ? pick_client(st, g, seq)
                    : static_cast<std::size_t>((seq * 2654435761ull) %
                                               g->population.size());
    const wl::ClientProfile profile = g->population[idx];
    fl::ModelUpdate u;
    u.model_version = cfg.hierarchy == HierarchyMode::kAsync
                          ? st->planner->version(g->id)
                          : g->round;
    u.producer = profile.id;
    u.sample_count = profile.samples;
    u.logical_bytes = cfg.model_bytes;
    // Straggler draw: the legacy hash, with the fraction swapped for the
    // tier's precomputed probability in tiered mode (IoT absorbs the
    // straggler mass first, spilling upward — the expected fraction under
    // random selection stays exactly `straggler_fraction`).
    double sfrac = cfg.straggler_fraction;
    const auto ti = static_cast<std::size_t>(profile.tier);
    if (g->population.tiered()) {
      if (sfrac > 0.0) sfrac = g->straggler_p[ti];
      ++g->tier_selected[ti];
    }
    const bool straggler =
        sfrac > 0.0 &&
        static_cast<double>((seq * 0x9e3779b97f4a7c15ull) >> 40) <
            sfrac * 16777216.0;
    if (straggler && g->population.tiered()) ++g->tier_stragglers[ti];
    const bool faulty = st->faults.enabled();
    if (st->lifecycle.enabled()) {
      // Flaky-client path: chunked resumable session (wire-level upload
      // faults are excluded by validation; crash faults compose).
      launch_session(st, g, std::move(u), profile, idx, seq, straggler);
    } else if (g->strategy) {
      // Strategy feedback probe, armed at arrival time so the observed
      // duration includes straggler delay — that is exactly the signal
      // scored selection learns the slow tiers from.
      Group* gp = g;
      const double t0 = g->sim->now();
      sim::Task done = [gp, ti, t0]() {
        ++gp->tier_completed[ti];
        gp->strategy->report(static_cast<wl::DeviceTier>(ti),
                             gp->sim->now() - t0, /*success=*/true);
      };
      const double uplink = profile.uplink_bytes_per_sec;
      if (straggler) {
        CampaignState* stp = st;
        g->sim->schedule_after(
            cfg.straggler_delay_secs,
            [stp, gp, u = std::move(u), uplink, seq, faulty,
             done = std::move(done)]() mutable {
              if (faulty) {
                attempt_upload(stp, gp, std::move(u), uplink, seq, 0,
                               std::move(done));
              } else {
                gp->plane->client_upload(0, std::move(u), uplink,
                                         std::move(done));
              }
            });
      } else if (faulty) {
        attempt_upload(st, g, std::move(u), uplink, seq, 0, std::move(done));
      } else {
        g->plane->client_upload(0, std::move(u), uplink, std::move(done));
      }
    } else if (straggler) {
      dp::DataPlane* plane = g->plane.get();
      const double uplink = profile.uplink_bytes_per_sec;
      if (faulty) {
        CampaignState* stp = st;
        Group* gp = g;
        g->sim->schedule_after(
            cfg.straggler_delay_secs,
            [stp, gp, u = std::move(u), uplink, seq]() mutable {
              attempt_upload(stp, gp, std::move(u), uplink, seq, 0);
            });
      } else {
        g->sim->schedule_after(cfg.straggler_delay_secs,
                               [plane, u = std::move(u), uplink]() mutable {
                                 plane->client_upload(0, std::move(u), uplink);
                               });
      }
    } else if (faulty) {
      attempt_upload(st, g, std::move(u), profile.uplink_bytes_per_sec, seq,
                     0);
    } else {
      // Fault-free fast path: preserved verbatim (zero allocations).
      g->plane->client_upload(0, std::move(u), profile.uplink_bytes_per_sec);
    }
    ++g->launched;
    ++g->total_uploads;
    if (g->launched >= g->target) return;
    g->next_rel = g->arrivals->next_after(g->next_rel, g->rng);
    g->sim->schedule_at(g->epoch + g->next_rel, ArrivalFn{st, g});
  }
};

/// Applies a model-version bump to one group's server-version slot. Posted
/// from the top's shard to the group's shard with the cross-group model
/// distribution latency, so the write lands in the group's own event order
/// — which is what keeps async runs bitwise identical across shard counts.
struct VersionApply {
  CampaignState* st;
  std::size_t group;
  std::uint32_t version;
  void operator()() const { st->planner->set_version(group, version); }
};

/// The recurring top's sink in async mode: every emission is one new
/// global model version (FedBuff — the buffer filled on count). Runs on
/// group 0's shard; appends per-version telemetry directly, re-targets the
/// top's next buffer, and broadcasts the bump to every group.
void on_version(CampaignState& st, fl::ModelUpdate u) {
  st.async_folded += u.updates_folded;
  const double now = st.groups[0].sim->now();
  st.out->round_started_at.push_back(st.version_started_at);
  st.out->round_completed_at.push_back(now);
  st.out->round_samples.push_back(u.sample_count);
  st.out->round_weight.push_back(u.weight);
  st.camp_obs.span(st.version_started_at, now, obs::Ev::kRound,
                   st.async_version, u.sample_count);
  st.camp_obs.instant(now, obs::Ev::kVersion, st.async_version,
                      u.updates_folded);
  st.camp_obs.observe_id(&obs::Ids::round_secs, now - st.version_started_at);
  st.version_started_at = now;
  if (st.cfg->async_auto_quota) {
    // FedBuff quota auto-tuning: EWMA of each version's effective/raw
    // weight ratio (1 = every fold was fresh). A staleness-discounted
    // stream shrinks the buffer so versions turn over faster (less
    // staleness next version); a clean stream keeps the full quota.
    const double raw = static_cast<double>(u.sample_count);
    const double ratio = raw > 0.0 ? u.weight / raw : 1.0;
    const double a = st.cfg->ewma_alpha;
    if (!st.quota_ratio_init) {
      st.quota_ratio = ratio;
      st.quota_ratio_init = true;
    } else {
      st.quota_ratio = a * st.quota_ratio + (1.0 - a) * ratio;
    }
    const auto base =
        static_cast<std::uint64_t>(st.cfg->uploads_per_round());
    const std::uint64_t lo = st.cfg->async_min_quota > 0
                                 ? st.cfg->async_min_quota
                                 : std::max<std::uint64_t>(1, base / 4);
    const auto tuned = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(base) * st.quota_ratio));
    const std::uint64_t next = std::clamp(tuned, lo, base);
    if (next != st.async_quota) {
      st.async_quota = next;
      ++st.quota_adjustments;
    }
  }
  if (st.async_folded >= st.async_total) {
    st.round_done = true;  // every update of the stream has been folded
    st.completed_at = now;
    return;
  }
  ++st.async_version;
  // The final buffer is the remainder: quotas never overhang the stream,
  // so the last version lands exactly when the last update folds.
  st.top->set_goal(static_cast<std::uint32_t>(std::min<std::uint64_t>(
      st.async_quota, st.async_total - st.async_folded)));
  for (std::size_t gi = 0; gi < st.groups.size(); ++gi) {
    const double t =
        now + cross_latency_secs(st.cfg->model_bytes);
    st.sharded->post(st.groups[0].shard, st.groups[gi].shard, t,
                     VersionApply{&st, gi, st.async_version});
  }
}

/// In-sim snapshot cost pulse: fires at every mark of the global
/// k·checkpoint_every_secs grid while the round is active, billing the
/// CheckpointManager cost model (marshal CPU on group 0's node, storage
/// latency off it) with the size the blob for this round will have. Riding
/// the event queue — not the coordinator's pause barriers — makes the
/// billing times exact grid points, identical for every shard count and
/// identical under resume-replay. The chain ends itself once the round
/// completed (one trailing no-op fire at the next mark).
struct CkptPulse {
  CampaignState* st;
  double at;
  void operator()() const {
    if (st->round_done) return;
    st->ckpt->begin_write(st->groups[0].round, st->ckpt_blob_bytes);
    ++st->ckpt_marks;
    st->camp_obs.instant(at, obs::Ev::kCkptMark,
                         static_cast<std::uint32_t>(st->ckpt_marks),
                         st->ckpt_blob_bytes);
    st->camp_obs.count_id(&obs::Ids::ckpt_marks);
    const double next = at + st->cfg->checkpoint_every_secs;
    st->groups[0].sim->schedule_at(next, CkptPulse{st, next});
  }
};

/// First point of the global mark grid strictly after `t`.
double first_mark_after(double t, double every) {
  return every * (std::floor(t / every) + 1.0);
}

/// Apply the configured cold-start model to a to-be-spawned runtime.
void spawn_cold(fl::AggregatorRuntime::Config& c,
                const ShardedCampaignConfig& cfg) {
  if (cfg.cold_start_spawns) apply_lifl_cold_start(c);
}

/// The planned-mode top aggregator's config at a given folded-count goal —
/// shared by the round arming and by crashed-top recovery, so a
/// replacement is indistinguishable from the original.
fl::AggregatorRuntime::Config planned_top_config(CampaignState& st,
                                                 std::uint32_t round,
                                                 std::uint64_t goal) {
  fl::AggregatorRuntime::Config tc;
  tc.id = 1;
  tc.node = 0;
  tc.role = fl::AggRole::kTop;
  tc.timing = fl::AggTiming::kEager;
  tc.goal = static_cast<std::uint32_t>(goal);
  tc.goal_kind = fl::GoalKind::kFoldedUpdates;
  tc.result_bytes = st.cfg->model_bytes;
  tc.expected_version = round;
  tc.leased = st.faults.enabled();
  tc.on_result = [&st](fl::ModelUpdate u) {
    st.round_done = true;
    st.completed_at = st.groups[0].sim->now();
    st.round_samples = u.sample_count;
    st.round_weight = u.weight;
  };
  return tc;
}

/// Crashed-top recovery (planned mode, runs on group 0's shard inside the
/// crash callback): abort the top's leases — the group relays it had
/// folded but not emitted — spawn a cold replacement at the current
/// (possibly quorum-shrunk) goal, and re-inject the retained relays.
/// In-flight TopInject posts resolve `st->top` at fire time, so relays
/// crossing shards during the crash instant land in the replacement. The
/// replacement gets no fresh crash draw (at most one top crash per round),
/// so recovery terminates.
void recover_top(CampaignState& st, std::uint32_t round) {
  ++st.top_crashes;
  auto& pool = st.groups[0].plane->env(0).pool;
  std::vector<fl::ModelUpdate> lost = pool.lease_abort(1);
  st.graveyard.push_back(std::move(st.top_rt));
  fl::AggregatorRuntime::Config tc =
      planned_top_config(st, round, st.top_goal);
  spawn_cold(tc, *st.cfg);
  if (st.cfg->cold_start_spawns) {
    st.top_recovery_secs += calib::kLiflColdStartSecs;
  }
  st.top_rt = std::make_unique<fl::AggregatorRuntime>(*st.groups[0].plane,
                                                      std::move(tc));
  st.top_rt->start();
  st.top = st.top_rt.get();
  for (auto& u : lost) st.top->inject(std::move(u));
}

/// Arm an open-loop arrival chain for one group: `target` uploads starting
/// at `epoch` (one round in synchronous modes, the whole stream in async).
void arm_arrivals(CampaignState& st, Group& g, std::uint32_t round,
                  double epoch, std::uint64_t target) {
  g.round = round;
  g.epoch = epoch;
  g.launched = 0;
  g.target = target;
  g.relays_done = 0;
  g.next_rel = g.arrivals->next_after(0.0, g.rng);
  g.sim->schedule_at(g.epoch + g.next_rel, ArrivalFn{&st, &g});
}

/// Build the fixed two-level tree of one round (the pre-orchestrator
/// baseline, preserved for A/B): fresh runtimes everywhere, torn down at
/// the end of the round. Returns the number spawned.
std::uint64_t arm_fixed_round(CampaignState& st, std::uint32_t round) {
  const ShardedCampaignConfig& cfg = *st.cfg;
  std::uint64_t spawned = 0;
  fl::AggregatorRuntime::Config tc;
  tc.id = 1;
  tc.node = 0;
  tc.role = fl::AggRole::kTop;
  tc.timing = cfg.timing;
  tc.goal = static_cast<std::uint32_t>(cfg.groups * cfg.leaves_per_group);
  tc.result_bytes = cfg.model_bytes;
  tc.expected_version = round;
  tc.on_result = [&st](fl::ModelUpdate u) {
    st.round_done = true;
    st.completed_at = st.groups[0].sim->now();
    st.round_samples = u.sample_count;
    st.round_weight = u.weight;
  };
  spawn_cold(tc, cfg);
  Group& g0 = st.groups[0];
  g0.aggs.push_back(std::make_unique<fl::AggregatorRuntime>(*g0.plane, tc));
  g0.aggs.back()->start();
  st.top = g0.aggs.back().get();
  ++spawned;

  for (std::size_t gi = 0; gi < cfg.groups; ++gi) {
    Group& g = st.groups[gi];
    fl::ParticipantId next_id = 10;
    for (std::size_t l = 0; l < cfg.leaves_per_group; ++l) {
      fl::AggregatorRuntime::Config lc;
      lc.id = next_id++;
      lc.node = 0;
      lc.role = fl::AggRole::kLeaf;
      lc.timing = cfg.timing;
      lc.goal = cfg.updates_per_leaf;
      lc.consumer = 0;  // results leave the group through the relay hook
      lc.result_bytes = cfg.model_bytes;
      lc.pull_from_pool = true;
      lc.expected_version = round;
      lc.on_result = GroupRelay{&st, gi};
      spawn_cold(lc, cfg);
      g.aggs.push_back(std::make_unique<fl::AggregatorRuntime>(*g.plane, lc));
      g.aggs.back()->start();
      ++spawned;
    }
  }
  return spawned;
}

double wall_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Config validation, run once before the first attempt (bad configs must
/// throw before the observability bundle or any side effects exist).
void validate_config(const ShardedCampaignConfig& cfg) {
  if (cfg.groups == 0) {
    throw std::invalid_argument("sharded campaign: groups must be >= 1");
  }
  if (cfg.shards == 0) {
    throw std::invalid_argument("sharded campaign: shards must be >= 1");
  }
  const bool planned = cfg.hierarchy == HierarchyMode::kPlanned;
  const bool async = cfg.hierarchy == HierarchyMode::kAsync;
  const bool orchestrated = planned || async;  // has planner + hierarchies
  if (cfg.straggler_fraction < 0.0 || cfg.straggler_fraction > 1.0 ||
      !std::isfinite(cfg.straggler_fraction)) {
    throw std::invalid_argument(
        "sharded campaign: straggler_fraction must be in [0, 1]");
  }
  const bool ck = cfg.checkpoint_every_secs > 0.0;
  const bool resume = cfg.resume_blob != nullptr || !cfg.resume_path.empty();
  if (resume && !ck) {
    throw std::invalid_argument(
        "sharded campaign: resume requires the checkpoint_every_secs the "
        "blob was cut under (the config digest enforces equality)");
  }
  if (!ck && (!cfg.checkpoint_path.empty() || cfg.on_checkpoint)) {
    throw std::invalid_argument(
        "sharded campaign: checkpoint_path/on_checkpoint need "
        "checkpoint_every_secs > 0 — no blobs would ever be emitted");
  }
  if (ck && !std::isfinite(cfg.checkpoint_every_secs)) {
    throw std::invalid_argument(
        "sharded campaign: checkpoint_every_secs must be finite");
  }
  const auto rate_ok = [](double r) {
    return std::isfinite(r) && r >= 0.0 && r <= 1.0;
  };
  if (!rate_ok(cfg.fault.leaf_crash_rate) ||
      !rate_ok(cfg.fault.middle_crash_rate) ||
      !rate_ok(cfg.fault.top_crash_rate) || !rate_ok(cfg.fault.outage_rate)) {
    throw std::invalid_argument(
        "sharded campaign: fault crash/outage rates must be in [0, 1]");
  }
  if (!rate_ok(cfg.fault.upload_drop_rate) ||
      cfg.fault.upload_drop_rate >= 1.0 ||
      !rate_ok(cfg.fault.upload_corrupt_rate) ||
      cfg.fault.upload_corrupt_rate >= 1.0) {
    throw std::invalid_argument(
        "sharded campaign: upload drop/corrupt rates must be in [0, 1) — at "
        "1 every retry fails too and no upload can ever deliver");
  }
  if (sim::FaultPlan(cfg.fault).enabled() && !orchestrated) {
    throw std::invalid_argument(
        "sharded campaign: fault injection requires the streaming hierarchy "
        "(planned or async mode) — recovery runs through its warm pools");
  }
  if (!std::isfinite(cfg.quorum) || cfg.quorum <= 0.0 || cfg.quorum > 1.0) {
    throw std::invalid_argument(
        "sharded campaign: quorum must be in (0, 1]");
  }
  if (cfg.quorum < 1.0) {
    if (!planned) {
      throw std::invalid_argument(
          "sharded campaign: quorum sealing is a synchronous-round "
          "mechanism — it requires planned mode");
    }
    if (!(cfg.round_deadline_secs > 0.0) ||
        !std::isfinite(cfg.round_deadline_secs)) {
      throw std::invalid_argument(
          "sharded campaign: quorum < 1 needs a finite positive "
          "round_deadline_secs to probe at");
    }
    if (ck) {
      throw std::invalid_argument(
          "sharded campaign: quorum sealing abandons in-flight uploads, "
          "which violates the checkpoint quiescence invariant — disable "
          "checkpoint_every_secs");
    }
  }

  // ---- edge-realistic clients: tier mix, lifecycle, selection ----------
  const bool tiered = cfg.device_tiers.enabled();
  if (tiered) {
    const auto share_ok = [](double s) {
      return std::isfinite(s) && s >= 0.0;
    };
    if (!share_ok(cfg.device_tiers.flagship) ||
        !share_ok(cfg.device_tiers.mid) || !share_ok(cfg.device_tiers.iot)) {
      throw std::invalid_argument(
          "sharded campaign: device tier shares must be finite and >= 0");
    }
    const double sum = cfg.device_tiers.flagship + cfg.device_tiers.mid +
                       cfg.device_tiers.iot;
    if (std::abs(sum - 1.0) > 1e-6) {
      throw std::invalid_argument(
          "sharded campaign: device tier shares must sum to 1 (or all be 0 "
          "for the untiered legacy population)");
    }
  }
  const bool lc_on = cfg.lifecycle.enabled();
  if (lc_on) {
    const auto& l = cfg.lifecycle;
    if (!std::isfinite(l.disconnect_rate) || l.disconnect_rate < 0.0 ||
        l.disconnect_rate >= 1.0) {
      throw std::invalid_argument(
          "sharded campaign: lifecycle disconnect_rate must be in [0, 1) — "
          "at 1 every attempt drops and no session can ever finish");
    }
    if (l.chunk_bytes == 0 || l.offline_queue_cap == 0) {
      throw std::invalid_argument(
          "sharded campaign: lifecycle chunk_bytes and offline_queue_cap "
          "must be >= 1");
    }
    const auto secs_ok = [](double s) {
      return std::isfinite(s) && s >= 0.0;
    };
    if (!secs_ok(l.offline_base_secs) || !secs_ok(l.offline_cap_secs) ||
        !secs_ok(l.offline_jitter)) {
      throw std::invalid_argument(
          "sharded campaign: lifecycle offline backoff fields must be "
          "finite and >= 0");
    }
    if (l.session_gates &&
        (!std::isfinite(l.connect_period_secs) ||
         l.connect_period_secs <= 0.0 ||
         !std::isfinite(l.charge_period_secs) ||
         l.charge_period_secs <= 0.0)) {
      throw std::invalid_argument(
          "sharded campaign: lifecycle session gates need positive finite "
          "connect/charge periods");
    }
    if (cfg.fault.upload_drop_rate > 0.0 ||
        cfg.fault.upload_corrupt_rate > 0.0 || cfg.fault.outage_rate > 0.0 ||
        cfg.fault.gateway_overflow_depth > 0) {
      throw std::invalid_argument(
          "sharded campaign: the client lifecycle supersedes wire-level "
          "upload faults (drop/corruption/outage/overflow) — the chunked "
          "session layer owns the client connection; crash faults compose");
    }
  }
  if (cfg.selector != ctrl::SelectorPolicy::kRandom && !tiered) {
    throw std::invalid_argument(
        "sharded campaign: scored/cluster-scan selection learns per-tier "
        "telemetry — it requires a tiered device population");
  }
  if (tiered || lc_on || cfg.selector != ctrl::SelectorPolicy::kRandom) {
    const auto& s = cfg.selection;
    if (!std::isfinite(s.alpha) || s.alpha < 0.0 || s.alpha > 1.0 ||
        !std::isfinite(s.score_gamma) || s.score_gamma < 0.0 ||
        !std::isfinite(s.exclude_below) || s.exclude_below < 0.0 ||
        s.exclude_below >= 1.0 || !std::isfinite(s.scan_weight) ||
        s.scan_weight < 0.0 || !std::isfinite(s.straggler_factor) ||
        s.straggler_factor <= 1.0) {
      throw std::invalid_argument(
          "sharded campaign: selection config out of range (alpha in "
          "[0, 1], score_gamma >= 0, exclude_below in [0, 1), scan_weight "
          ">= 0, straggler_factor > 1)");
    }
  }
  if (cfg.async_auto_quota && !async) {
    throw std::invalid_argument(
        "sharded campaign: async_auto_quota tunes the FedBuff version "
        "quota — it requires async mode");
  }
  if (cfg.async_min_quota >
      static_cast<std::uint64_t>(cfg.uploads_per_round())) {
    throw std::invalid_argument(
        "sharded campaign: async_min_quota exceeds uploads_per_round()");
  }
  if (cfg.sync_mode == sim::SyncMode::kOptimistic) {
    if (cfg.quorum < 1.0) {
      throw std::invalid_argument(
          "sharded campaign: optimistic sync replays rounds from their "
          "boundary commit through the checkpoint codec, which quorum "
          "sealing is incompatible with — use conservative or adaptive "
          "sync with quorum < 1");
    }
    if (!(cfg.spec_commit_every_secs > 0.0) ||
        !std::isfinite(cfg.spec_commit_every_secs)) {
      throw std::invalid_argument(
          "sharded campaign: spec_commit_every_secs must be positive and "
          "finite");
    }
  }
}

/// Lower bound on the delivery time of group `g`'s next cross-shard post —
/// its relay aggregate into the top's shard, plus (under quorum) a possible
/// deadline-shortfall shrink — or +inf when the group provably posts no
/// more this round. 0 = no useful bound (the conservative horizon rules).
///
/// The argument: a relay output needs `needed` folded client updates, folds
/// never exceed launched uploads (leases make refolds exactly-once), and
/// arrivals launch one at a time — so while `launched < needed` the relay
/// cannot fire before the next scheduled arrival at `epoch + next_rel`,
/// and its post delivers a cross-group latency after that. Pure reads of
/// group-local state, evaluated only while the shards are parked.
double group_outbound_bound(const CampaignState& st, const Group& g) {
  const ShardedCampaignConfig& cfg = *st.cfg;
  const double inf = std::numeric_limits<double>::infinity();
  std::uint64_t needed = 0;
  double deadline = inf;  // quorum-shrink probe bound (planned only)
  switch (cfg.hierarchy) {
    case HierarchyMode::kFixed:
      // One-shot leaves relay at updates_per_leaf folds each; the k-th
      // relay needs at least k * updates_per_leaf folds in the group.
      if (g.relays_done >= cfg.leaves_per_group) return inf;
      needed = (g.relays_done + 1) *
               static_cast<std::uint64_t>(cfg.updates_per_leaf);
      break;
    case HierarchyMode::kPlanned:
      // The group relay fires once, at the full per-group target — or
      // early at a quorum seal, which cannot land (nor can the shortfall
      // shrink it posts) before the round-deadline probe.
      if (cfg.quorum < 1.0) {
        deadline = g.epoch + cfg.round_deadline_secs + cross_latency_secs(0);
      }
      if (g.relays_done >= 1) return deadline;
      needed = g.target;
      break;
    case HierarchyMode::kAsync: {
      // Recurring relay: flushes every `flush` folded updates, remainder
      // last; `g.target` is the group's whole-stream upload share.
      const std::uint64_t flush =
          cfg.async_flush_updates > 0
              ? cfg.async_flush_updates
              : static_cast<std::uint64_t>(cfg.middle_fanin) *
                    cfg.updates_per_leaf;
      const std::uint64_t done = g.relays_done * flush;
      if (done >= g.target) return inf;
      needed = std::min(done + flush, g.target);
      break;
    }
  }
  if (g.launched >= needed) return 0.0;
  const double relay =
      g.epoch + g.next_rel + cross_latency_secs(cfg.model_bytes);
  return std::min(relay, deadline);
}

/// Lower bound on the next VersionApply broadcast out of the top's shard
/// (async mode): the next version needs `async_folded + goal` cumulative
/// folds, folds never exceed launched uploads, so while the fleet has not
/// launched that many the emission waits for the earliest next arrival.
double async_top_bound(const CampaignState& st) {
  const double inf = std::numeric_limits<double>::infinity();
  if (st.round_done) return inf;  // stream over: no more broadcasts
  const std::uint64_t need =
      st.async_folded +
      std::min(st.async_quota, st.async_total - st.async_folded);
  std::uint64_t launched = 0;
  for (const Group& g : st.groups) launched += g.launched;
  if (launched >= need) return 0.0;
  double arrival = inf;
  for (const Group& g : st.groups) {
    if (g.launched >= g.target) continue;
    arrival = std::min(arrival, g.epoch + g.next_rel);
  }
  if (arrival == inf) return 0.0;
  return arrival + cross_latency_secs(st.cfg->model_bytes);
}

/// Install the per-shard outbound promises that widen adaptive/optimistic
/// barrier windows: campaign-level knowledge the sharded core cannot see.
/// The core only *verifies* (a cross post below its shard's promise throws)
/// and plans windows with the published bounds. Posts between co-located
/// groups never cross shards, so a group living on the top's shard
/// contributes nothing.
void install_promises(CampaignState& st, sim::ShardedSimulator& sharded) {
  const std::size_t top_shard = st.groups[0].shard;
  const bool is_async = st.cfg->hierarchy == HierarchyMode::kAsync;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    sharded.set_promise(s, [&st, s, top_shard, is_async]() {
      double bound = std::numeric_limits<double>::infinity();
      for (const Group& g : st.groups) {
        if (g.shard != s || g.shard == top_shard) continue;
        bound = std::min(bound, group_outbound_bound(st, g));
        if (bound <= 0.0) return 0.0;
      }
      if (is_async && s == top_shard) {
        bound = std::min(bound, async_top_bound(st));
      }
      return std::max(bound, 0.0);
    });
  }
}

/// State carried across optimistic rollback attempts of one campaign call.
/// Everything that must survive a `sim::CausalityViolation` — the straggler
/// that invalidates a speculative window throws the whole attempt away and
/// replays from the latest commit with the speculation fence raised.
struct AttemptCtx {
  /// Observability bundle, created once: rings and registry outlive
  /// rollbacks (see docs/ARCHITECTURE.md on trace passivity — results are
  /// bitwise under rollbacks, traces are not).
  std::shared_ptr<obs::CampaignObs> obs;
  std::vector<std::uint8_t> commit;  ///< latest rollback anchor blob
  double fence = 0.0;          ///< replay fence: max violated receiver clock
  std::uint64_t rollbacks = 0;
  // User checkpoint-emission accounting, cross-attempt: blobs the process
  // already handed out (files written, on_checkpoint fired) are never
  // re-emitted nor re-counted by a replay.
  std::uint64_t ckpt_written = 0;
  std::uint64_t ckpt_bytes = 0;
  double encode_secs = 0.0;
  std::uint32_t em_round = 0;  ///< high-water of emitted marks: round ...
  double em_mark = -1.0;       ///< ... and mark within that round
};

/// One execution attempt of the campaign. Under conservative/adaptive sync
/// this runs exactly once; under optimistic sync a straggling cross-post
/// aborts it with sim::CausalityViolation and the caller re-enters with
/// `ax.commit` as the resume anchor and `ax.fence` raised.
ShardedCampaignResult run_attempt(const ShardedCampaignConfig& cfg,
                                  AttemptCtx& ax) {
  const bool planned = cfg.hierarchy == HierarchyMode::kPlanned;
  const bool async = cfg.hierarchy == HierarchyMode::kAsync;
  const bool orchestrated = planned || async;
  const bool tiered = cfg.device_tiers.enabled();
  const bool lc_on = cfg.lifecycle.enabled();
  const bool ck = cfg.checkpoint_every_secs > 0.0;
  /// Optimistic multi-shard runs journal rollback anchors; a 1-shard run
  /// never speculates, so it never pays for commits either.
  const bool commits =
      cfg.sync_mode == sim::SyncMode::kOptimistic && cfg.shards > 1;
  const bool internal = !ax.commit.empty();  // resuming from a rollback
  const bool resume =
      internal || cfg.resume_blob != nullptr || !cfg.resume_path.empty();
  /// Marks whose user checkpoint was already emitted (by the pre-crash
  /// process under user resume, by an earlier attempt under rollback).
  const auto already_emitted = [&ax](std::uint32_t round, double m) {
    return round < ax.em_round || (round == ax.em_round && m <= ax.em_mark);
  };

  sim::ShardedSimulator::Config scfg;
  scfg.shards = cfg.shards;
  scfg.lookahead = calib::kCrossShardLatencySecs;
  scfg.sync = cfg.sync_mode;
  scfg.spec_max_lookaheads = cfg.spec_max_lookaheads;
  scfg.spec_fence = ax.fence;
  sim::ShardedSimulator sharded(scfg);

  // Observability bundle (passive): rings + registry live on the attempt
  // context (and then the result's shared_ptr) so they outlive rollbacks
  // and this call; the sharded core only holds a borrowed recorder pointer
  // for the duration of the run.
  const std::shared_ptr<obs::CampaignObs>& campaign_obs = ax.obs;
  if (campaign_obs && cfg.obs.trace) {
    sharded.set_trace(&campaign_obs->trace());
  }

  CampaignState st;
  st.cfg = &cfg;
  st.sharded = &sharded;
  if (campaign_obs) {
    // Group 0 always maps to shard 0; its thread runs the checkpoint
    // pulses and async version emissions.
    st.camp_obs = campaign_obs->campaign_obs_on_shard(0);
    st.coord_obs = campaign_obs->coordinator_obs();
  }
  st.faults = sim::FaultPlan(cfg.fault);
  {
    // Mix the campaign seed into the lifecycle/selection draw seeds so two
    // campaigns differing only in `seed` get different session schedules.
    wl::LifecyclePlan::Config lcfg = cfg.lifecycle;
    lcfg.seed ^= cfg.seed * 0x9E3779B97F4A7C15ull;
    st.lifecycle = wl::LifecyclePlan(lcfg);
  }
  st.groups.resize(cfg.groups);

  const std::size_t pop_per_group = std::max<std::size_t>(
      1, cfg.population / cfg.groups);
  wl::ArrivalProcess::Config acfg{cfg.peak_per_sec /
                                      static_cast<double>(cfg.groups),
                                  cfg.ramp_secs, cfg.diurnal_amplitude,
                                  cfg.diurnal_period_secs};

  if (orchestrated) {
    ctrl::CampaignPlanner::Config pcfg;
    pcfg.updates_per_leaf = cfg.updates_per_leaf;
    pcfg.middle_fanin = cfg.middle_fanin;
    pcfg.min_leaves = 1;
    pcfg.max_leaves = static_cast<std::uint32_t>(
        std::max<std::size_t>(1, cfg.leaves_per_group));
    pcfg.ewma_alpha = cfg.ewma_alpha;
    pcfg.hysteresis = cfg.replan_hysteresis;
    st.planner = std::make_unique<ctrl::CampaignPlanner>(pcfg, cfg.groups);
  }

  for (std::size_t gi = 0; gi < cfg.groups; ++gi) {
    Group& g = st.groups[gi];
    g.id = gi;
    g.shard = gi % cfg.shards;
    g.sim = &sharded.shard(g.shard);
    g.cluster = std::make_unique<sim::Cluster>(*g.sim, 1);
    dp::DataPlaneConfig pcfg = dp::lifl_plane();
    pcfg.gateway_cores = cfg.gateway_cores;
    pcfg.gateway_queues = cfg.gateway_queues;
    g.plane = std::make_unique<dp::DataPlane>(
        *g.cluster, pcfg, sim::Rng(cfg.seed * 1000003 + gi));
    if (campaign_obs) {
      g.obs = campaign_obs->group_obs(gi, g.shard);
      g.plane->env(0).pool.set_wait_observer(
          g.obs.hist_slot(campaign_obs->ids().gateway_wait_secs));
    }
    g.rng = sim::Rng(cfg.seed ^ (0x9e3779b97f4a7c15ull * (gi + 1)));
    g.population =
        tiered ? wl::ClientPopulation::tiered(
                     pop_per_group, cfg.device_tiers, g.rng,
                     /*first_id=*/1'000'000 + gi * pop_per_group)
               : wl::ClientPopulation::synthetic(
                     pop_per_group, /*mobile=*/true, g.rng,
                     /*first_id=*/1'000'000 + gi * pop_per_group);
    if (tiered || lc_on || cfg.selector != ctrl::SelectorPolicy::kRandom) {
      ctrl::SelectionStrategy::Config selcfg = cfg.selection;
      selcfg.seed ^= cfg.seed * 0xBF58476D1CE4E5B9ull;
      g.strategy = ctrl::make_selection_strategy(cfg.selector, selcfg, gi);
    }
    if (tiered && cfg.straggler_fraction > 0.0) {
      // Per-tier straggler probabilities: the straggler mass lands on the
      // IoT tier first and spills upward (mid-range, then flagship), so
      // "30% stragglers" is literally 30% of uniform-random picks — but a
      // tier-aware selector can avoid nearly all of them.
      const double n = static_cast<double>(g.population.size());
      const auto share = [&](wl::DeviceTier t) {
        return static_cast<double>(g.population.tier_count(t)) / n;
      };
      double spill = cfg.straggler_fraction;
      const wl::DeviceTier order[] = {wl::DeviceTier::kIoT,
                                      wl::DeviceTier::kMidRange,
                                      wl::DeviceTier::kFlagship};
      for (wl::DeviceTier t : order) {
        const double s = share(t);
        const double p = s > 0.0 ? std::min(1.0, spill / s) : 0.0;
        g.straggler_p[static_cast<std::size_t>(t)] = p;
        spill = std::max(0.0, spill - s * p);
      }
    }
    g.arrivals = std::make_unique<wl::ArrivalProcess>(acfg);
    if (orchestrated) {
      StreamingHierarchy::Config hcfg;
      hcfg.group = gi;
      hcfg.node = 0;
      hcfg.relay_id = 2;
      hcfg.middle_base = 100;
      hcfg.leaf_base = 1000;
      hcfg.updates_per_leaf = cfg.updates_per_leaf;
      hcfg.leaf_timing = cfg.timing;
      hcfg.result_bytes = cfg.model_bytes;
      hcfg.reuse = cfg.reuse;
      hcfg.replan_interval = cfg.replan_interval_secs;
      hcfg.cold_start_spawns = cfg.cold_start_spawns;
      hcfg.obs = g.obs;
      hcfg.on_relay_result = GroupRelay{&st, gi};
      if (st.faults.enabled()) hcfg.faults = &st.faults;
      if (planned && cfg.quorum < 1.0) {
        hcfg.quorum = cfg.quorum;
        hcfg.round_deadline_secs = cfg.round_deadline_secs;
        hcfg.on_quorum_shortfall = [&st, gi](std::uint64_t abandoned) {
          // Post the goal shrink into the top's shard so it lands in the
          // top's own event order (shard-count invariant).
          Group& g = st.groups[gi];
          const double t = g.sim->now() + cross_latency_secs(0);
          st.sharded->post(g.shard, st.groups[0].shard, t,
                           TopShrink{&st, abandoned});
        };
      }
      if (async) {
        hcfg.async = true;
        hcfg.seal_deadline_secs = cfg.async_deadline_secs;
        hcfg.adaptive_deadline = cfg.async_adaptive_deadline;
        hcfg.flush_updates = cfg.async_flush_updates;
        hcfg.live_version = st.planner->version_ptr(gi);
      }
      g.hier = std::make_unique<StreamingHierarchy>(*g.plane, *st.planner,
                                                    hcfg);
    }
  }

  if (cfg.sync_mode != sim::SyncMode::kConservative && cfg.shards > 1) {
    install_promises(st, sharded);
  }

  ShardedCampaignResult result;

  // ---- resume: apply the blob's round-boundary image onto the freshly
  // built world, then deterministically re-execute the in-progress round up
  // to the cut mark (write suppression below) — which re-materializes every
  // in-flight event bit-exactly. See src/systems/campaign_checkpoint.hpp.
  CheckpointCut cut;
  if (resume) {
    // A rollback anchor (internal) outranks the user's resume source: it
    // was cut later in the same timeline, under the identical config.
    const std::vector<std::uint8_t> blob =
        internal ? ax.commit
        : cfg.resume_blob != nullptr
            ? *cfg.resume_blob
            : CampaignCheckpoint::read_file(cfg.resume_path);
    cut = CampaignCheckpoint::restore(blob, st, result);
    // Marks at or before this cut already emitted their user checkpoints
    // (pre-crash process or earlier attempt) — replay must not re-emit.
    if (cut.round > ax.em_round) {
      ax.em_round = cut.round;
      ax.em_mark = cut.mark;
    } else if (cut.round == ax.em_round) {
      ax.em_mark = std::max(ax.em_mark, cut.mark);
    }
  }
  if (ck) {
    st.ckpt = std::make_unique<fl::CheckpointManager>(*st.groups[0].cluster,
                                                      0, cfg.checkpoint_cost);
  }

  if (async) {
    // ---- asynchronous mode: ONE continuous stream, no round barrier.
    // `rounds` counts model versions; the recurring top seals a FedBuff
    // buffer (emits a version) every `uploads_per_round()` folded updates
    // and the stream ends when all rounds × uploads_per_round() updates
    // have folded. The checkpoint boundary is the stream start (cut.round
    // is always 1); any mid-stream crash replays from there to the mark.
    double epoch = 0.0;
    for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
      epoch = std::max(epoch, sharded.shard(s).now());
    }
    st.round_done = false;
    st.out = &result;
    st.async_quota = static_cast<std::uint64_t>(cfg.uploads_per_round());
    st.async_total = st.async_quota * cfg.rounds;
    st.async_folded = 0;
    st.async_version = 1;
    st.version_started_at = epoch;
    std::uint64_t spawned = 0;
    std::uint64_t reused = 0;

    std::vector<std::uint8_t> boundary;
    if (ck || commits) {
      const auto enc0 = std::chrono::steady_clock::now();
      boundary = CampaignCheckpoint::encode_boundary(st, result, 1);
      if (ck) ax.encode_secs += wall_since(enc0);
      st.ckpt_blob_bytes =
          boundary.size() + CampaignCheckpoint::cut_trailer_bytes();
      // Rollback anchor at the stream boundary (mark -1 = "round start"):
      // a violation before the first commit mark replays from here.
      if (commits) ax.commit = CampaignCheckpoint::with_cut(boundary, -1.0);
    }

    // The recurring top on group 0: a version-cadence buffer, re-targeted
    // by on_version after every emission. expected_version stays 0 — any
    // version folds; staleness is discounted at the leaves, not here.
    fl::AggregatorRuntime::Config tc;
    tc.id = 1;
    tc.node = 0;
    tc.role = fl::AggRole::kTop;
    tc.timing = fl::AggTiming::kEager;
    tc.goal = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(st.async_quota, st.async_total));
    tc.goal_kind = fl::GoalKind::kFoldedUpdates;
    tc.recurring = true;
    tc.result_bytes = cfg.model_bytes;
    tc.on_result = [&st](fl::ModelUpdate u) { on_version(st, std::move(u)); };
    spawn_cold(tc, cfg);
    st.top_rt = std::make_unique<fl::AggregatorRuntime>(*st.groups[0].plane,
                                                        std::move(tc));
    st.top_rt->start();
    ++spawned;
    st.top = st.top_rt.get();

    // Every group starts the stream at server version 1 (the coordinator
    // seeds the slots before any shard runs, so no race and no post).
    for (std::size_t gi = 0; gi < cfg.groups; ++gi) {
      st.planner->set_version(gi, 1);
    }

    const std::vector<double> expected(
        cfg.groups, static_cast<double>(cfg.per_group_target()));
    const ctrl::CampaignPlan plan = st.planner->plan_round(expected);
    const std::uint64_t per_group_stream =
        static_cast<std::uint64_t>(cfg.per_group_target()) * cfg.rounds;
    for (std::size_t gi = 0; gi < cfg.groups; ++gi) {
      st.groups[gi].hier->begin_stream(per_group_stream, plan.groups[gi],
                                       epoch);
      arm_arrivals(st, st.groups[gi], 1, epoch, per_group_stream);
    }

    // ---- run the stream, emitting checkpoints and/or rollback commits on
    // the mark grid (same pulse + pause machinery as the synchronous
    // rounds). The in-sim billing pulse runs only for user checkpoints —
    // internal commits must leave the simulated timeline untouched, or a
    // non-checkpointed optimistic run would diverge from conservative.
    if (ck || commits) {
      const double every =
          ck ? cfg.checkpoint_every_secs : cfg.spec_commit_every_secs;
      const double first = first_mark_after(epoch, every);
      if (ck) st.groups[0].sim->schedule_at(first, CkptPulse{&st, first});
      double m = first;
      for (;;) {
        sharded.run_to(m);
        if (st.round_done || sharded.pending_regular() == 0) break;
        const bool emit = ck && !already_emitted(1, m);
        if (emit || commits) {
          const auto enc0 = std::chrono::steady_clock::now();
          std::vector<std::uint8_t> blob =
              CampaignCheckpoint::with_cut(boundary, m);
          if (emit) {
            ax.encode_secs += wall_since(enc0);
            ++ax.ckpt_written;
            ax.ckpt_bytes += blob.size();
            st.coord_obs.instant(m, obs::Ev::kCkptEncode,
                                 static_cast<std::uint32_t>(ax.ckpt_written),
                                 blob.size());
            if (!cfg.checkpoint_path.empty()) {
              CampaignCheckpoint::write_file(cfg.checkpoint_path, blob);
            }
            if (cfg.on_checkpoint) cfg.on_checkpoint(blob, 1, m);
            ax.em_round = 1;
            ax.em_mark = m;
          }
          if (commits) ax.commit = std::move(blob);
        }
        m += every;
      }
      sharded.run();
    } else {
      sharded.run();
    }
    if (!st.round_done) {
      throw std::runtime_error(
          "sharded campaign: async stream did not complete");
    }

    // ---- stream epilogue (coordinator, shards idle): park the fleet and
    // attribute the stream's churn to its first version entry — spawns
    // happen only while the initial fleet ramps; steady state is zero.
    std::uint64_t refolded = 0;
    for (auto& g : st.groups) {
      const StreamingHierarchy::Stats& rs = g.hier->round_stats();
      spawned += rs.spawned;
      reused += rs.reused;
      result.replans += rs.replans;
      result.leaf_drains += rs.drains;
      result.peak_leaves = std::max(result.peak_leaves, rs.peak_leaves);
      result.leaf_crashes += rs.leaf_crashes;
      result.middle_crashes += rs.middle_crashes;
      result.refolded_updates += rs.refolded;
      result.reinjected_partials += rs.reinjected;
      result.recovery_secs += rs.recovery_secs;
      refolded += rs.refolded;
      g.hier->end_round();
    }
    result.round_spawned.assign(result.round_started_at.size(), 0);
    result.round_reused.assign(result.round_started_at.size(), 0);
    result.round_refolded.assign(result.round_started_at.size(), 0);
    if (!result.round_spawned.empty()) {
      result.round_spawned.front() = spawned;
      result.round_reused.front() = reused;
      result.round_refolded.front() = refolded;
    }
    result.spawned_total += spawned;
    result.reused_total += reused;
  }

  for (std::uint32_t round = resume ? cut.round : 1;
       !async && round <= cfg.rounds; ++round) {
    // Round epoch: the latest group clock — identical for every shard
    // count (each group's event times are shard-count independent).
    double epoch = 0.0;
    for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
      epoch = std::max(epoch, sharded.shard(s).now());
    }
    st.round_done = false;
    std::uint64_t spawned = 0;
    std::uint64_t reused = 0;

    // The round's boundary image: the durable part of every snapshot this
    // round emits. Encoding is deterministic, so a resume replaying this
    // round re-derives the identical bytes (and billing size).
    std::vector<std::uint8_t> boundary;
    if (ck || commits) {
      const auto enc0 = std::chrono::steady_clock::now();
      boundary = CampaignCheckpoint::encode_boundary(st, result, round);
      if (ck) ax.encode_secs += wall_since(enc0);
      st.ckpt_blob_bytes =
          boundary.size() + CampaignCheckpoint::cut_trailer_bytes();
      // Rollback anchor at the round boundary (mark -1 = "round start").
      if (commits) ax.commit = CampaignCheckpoint::with_cut(boundary, -1.0);
    }

    if (planned) {
      // ---- streaming orchestrator: the coordinator plans at the round
      // barrier (shards idle), groups arm + re-plan locally mid-round.
      st.top_goal = static_cast<std::uint64_t>(cfg.uploads_per_round());
      fl::AggregatorRuntime::Config tc =
          planned_top_config(st, round, st.top_goal);
      if (st.faults.enabled()) {
        const std::uint32_t k = st.faults.top_crash_point(
            round, static_cast<std::uint64_t>(cfg.groups));
        if (k > 0) {
          tc.fail_after_folds = k;
          tc.on_failed = [&st, round] { recover_top(st, round); };
        }
      }
      if (st.top_rt && cfg.reuse) {
        st.top_rt->rearm(std::move(tc));
        ++reused;
      } else {
        spawn_cold(tc, cfg);
        st.top_rt = std::make_unique<fl::AggregatorRuntime>(
            *st.groups[0].plane, std::move(tc));
        st.top_rt->start();
        ++spawned;
      }
      st.top = st.top_rt.get();

      const std::vector<double> expected(
          cfg.groups, static_cast<double>(cfg.per_group_target()));
      const ctrl::CampaignPlan plan = st.planner->plan_round(expected);
      for (std::size_t gi = 0; gi < cfg.groups; ++gi) {
        st.groups[gi].hier->begin_round(round, cfg.per_group_target(),
                                        plan.groups[gi], epoch);
      }
    } else {
      spawned += arm_fixed_round(st, round);
    }

    for (std::size_t gi = 0; gi < cfg.groups; ++gi) {
      arm_arrivals(st, st.groups[gi], round, epoch, cfg.per_group_target());
    }

    // ---- run the round to completion across all shards.
    if (ck || commits) {
      // Snapshot marks: the in-sim pulse bills the cost model at exact grid
      // points; the coordinator pauses at the same grid (bit-transparent —
      // see ShardedSimulator::run_to) purely to emit blobs while the round
      // is in flight. On resume-replay, marks at or before the cut are
      // re-billed (the uninterrupted timeline paid them too) but their
      // blobs are not re-emitted. Internal rollback commits ride the same
      // grid but never bill in-sim nor fire user sinks — a
      // non-checkpointed optimistic run must stay on the conservative
      // timeline bitwise.
      const double every =
          ck ? cfg.checkpoint_every_secs : cfg.spec_commit_every_secs;
      const double first = first_mark_after(epoch, every);
      if (ck) st.groups[0].sim->schedule_at(first, CkptPulse{&st, first});
      double m = first;
      for (;;) {
        sharded.run_to(m);
        if (st.round_done || sharded.pending_regular() == 0) break;
        const bool emit = ck && !already_emitted(round, m);
        if (emit || commits) {
          const auto enc0 = std::chrono::steady_clock::now();
          std::vector<std::uint8_t> blob =
              CampaignCheckpoint::with_cut(boundary, m);
          if (emit) {
            ax.encode_secs += wall_since(enc0);
            ++ax.ckpt_written;
            ax.ckpt_bytes += blob.size();
            st.coord_obs.instant(m, obs::Ev::kCkptEncode,
                                 static_cast<std::uint32_t>(ax.ckpt_written),
                                 blob.size());
            if (!cfg.checkpoint_path.empty()) {
              CampaignCheckpoint::write_file(cfg.checkpoint_path, blob);
            }
            if (cfg.on_checkpoint) cfg.on_checkpoint(blob, round, m);
            ax.em_round = round;
            ax.em_mark = m;
          }
          if (commits) ax.commit = std::move(blob);
        }
        m += every;
      }
      // Trailing drain: stragglers, in-flight checkpoint persistence, and
      // the pulse's final (no-op) fire at the next mark.
      sharded.run();
    } else {
      sharded.run();
    }
    if (!st.round_done) {
      throw std::runtime_error("sharded campaign: round " +
                               std::to_string(round) + " did not complete");
    }
    result.round_started_at.push_back(epoch);
    result.round_completed_at.push_back(st.completed_at);
    result.round_samples.push_back(st.round_samples);
    result.round_weight.push_back(st.round_weight);
    // Round span + latency (coordinator thread, shards parked).
    st.coord_obs.span(epoch, st.completed_at, obs::Ev::kRound, round,
                      st.round_samples);
    st.coord_obs.observe_id(&obs::Ids::round_secs, st.completed_at - epoch);

    // Round-boundary bookkeeping (coordinator thread, sims idle).
    std::uint64_t refolded_round = 0;
    if (planned) {
      for (auto& g : st.groups) {
        const StreamingHierarchy::Stats& rs = g.hier->round_stats();
        spawned += rs.spawned;
        reused += rs.reused;
        result.replans += rs.replans;
        result.leaf_drains += rs.drains;
        result.peak_leaves = std::max(result.peak_leaves, rs.peak_leaves);
        result.leaf_crashes += rs.leaf_crashes;
        result.middle_crashes += rs.middle_crashes;
        result.refolded_updates += rs.refolded;
        result.reinjected_partials += rs.reinjected;
        result.quorum_seals += rs.quorum_seals;
        result.quorum_abandoned += rs.quorum_abandoned;
        result.recovery_secs += rs.recovery_secs;
        refolded_round += rs.refolded;
        g.hier->end_round();
      }
      st.graveyard.clear();  // crashed tops parked during this round
      if (!cfg.reuse) {
        st.top = nullptr;
        st.top_rt.reset();
      }
    } else {
      st.top = nullptr;
      for (auto& g : st.groups) g.aggs.clear();
    }
    result.round_spawned.push_back(spawned);
    result.round_reused.push_back(reused);
    result.round_refolded.push_back(refolded_round);
    result.spawned_total += spawned;
    result.reused_total += reused;
  }

  // ---- collect per-group aggregates (group-local event order only).
  result.groups.reserve(cfg.groups);
  double sim_end = 0.0;
  for (auto& g : st.groups) {
    ShardedGroupStats s;
    s.uploads = g.total_uploads;
    s.pool_pushed = g.plane->env(0).pool.total_pushed();
    s.gateway_busy_secs = g.plane->env(0).gateway.busy_time();
    s.gateway_wait_secs = g.plane->env(0).gateway.total_wait_time();
    s.cpu_cycles = g.cluster->total_cpu().total_cycles();
    result.groups.push_back(s);
    result.upload_retries += g.upload_retries;
    result.upload_drops += g.upload_drops;
    result.upload_corruptions += g.upload_corruptions;
    result.overflow_rejects += g.overflow_rejects;
    result.outage_rejects += g.outage_rejects;
    for (std::size_t t = 0; t < wl::kTierCount; ++t) {
      result.tiers[t].selected += g.tier_selected[t];
      result.tiers[t].completed += g.tier_completed[t];
      result.tiers[t].disconnects += g.tier_disconnects[t];
      result.tiers[t].stragglers += g.tier_stragglers[t];
    }
    result.disconnects += g.lifecycle.disconnects;
    result.resumed_uploads += g.lifecycle.resumes;
    result.chunks_sent += g.lifecycle.chunks_sent;
    result.chunks_resent += g.lifecycle.chunks_resent;
    result.selection_redraws += g.selection_redraws;
    result.offline_queue_peak =
        std::max<std::uint64_t>(result.offline_queue_peak, g.offline_peak);
    result.gate_wait_secs += g.gate_wait_secs;
    sim_end = std::max(sim_end, g.sim->now());
  }
  result.quota_adjustments = st.quota_adjustments;
  result.async_quota_final = st.async_quota;
  result.top_crashes = st.top_crashes;
  result.recovery_secs += st.top_recovery_secs;
  result.faults_injected = result.leaf_crashes + result.middle_crashes +
                           result.top_crashes + result.upload_drops +
                           result.upload_corruptions +
                           result.overflow_rejects + result.outage_rejects;
  result.events = sharded.dispatched();
  result.cross_posts = sharded.cross_posts();
  result.windows = sharded.windows();
  // Per-shard barrier report (always on — the core counts windows whether
  // or not tracing is enabled; zero for the 1-shard fast path, which never
  // runs the window barrier).
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    const sim::ShardedSimulator::WindowStats& ws = sharded.window_stats(s);
    result.shard_windows.push_back(ws.windows);
    result.shard_empty_windows.push_back(ws.empty_windows);
    result.shard_idle_secs.push_back(ws.idle_wall_secs);
    if (campaign_obs && cfg.obs.metrics) {
      obs::Registry& reg = campaign_obs->registry();
      const obs::Ids& ids = campaign_obs->ids();
      const std::uint32_t slot = campaign_obs->shard_slot(s);
      reg.add(slot, ids.windows, ws.windows);
      reg.add(slot, ids.empty_windows, ws.empty_windows);
      reg.set(slot, ids.barrier_idle_secs, ws.idle_wall_secs);
    }
  }
  result.obs = ax.obs;
  result.checkpoint_marks = st.ckpt_marks;
  // Cross-attempt accounting: emissions that already happened (files
  // written, sinks fired) survive a rollback even though the attempt's
  // result object did not.
  result.checkpoints_written = ax.ckpt_written;
  result.checkpoint_bytes = ax.ckpt_bytes;
  result.checkpoint_encode_secs = ax.encode_secs;
  result.windows_skipped = sharded.windows_skipped();
  result.rollbacks = ax.rollbacks;
  if (result.windows_skipped > 0) {
    st.coord_obs.count_id(&obs::Ids::skipped_windows, result.windows_skipped);
  }
  result.sim_secs = sim_end;
  return result;
}

}  // namespace

ShardedCampaignResult run_sharded_campaign(const ShardedCampaignConfig& cfg) {
  validate_config(cfg);
  const auto wall0 = std::chrono::steady_clock::now();
  AttemptCtx ax;
  if (cfg.obs.enabled()) {
    ax.obs = std::make_shared<obs::CampaignObs>(cfg.obs, cfg.shards,
                                                cfg.groups);
  }
  // Optimistic rollback loop: a straggling cross-post that invalidated a
  // speculative window aborts the attempt; re-enter from the latest commit
  // with the speculation fence raised to the violated receiver clock.
  // Every violation's fence lies strictly above the commit it replays from
  // (commits cut at quiescent marks below any in-flight post), so the
  // fence strictly increases and the loop terminates; the cap is a
  // backstop against an unsound promise/commit interaction, not a tuning
  // knob.
  constexpr std::uint64_t kMaxRollbacks = 1000;
  for (;;) {
    try {
      ShardedCampaignResult result = run_attempt(cfg, ax);
      result.wall_secs = wall_since(wall0);
      return result;
    } catch (const sim::CausalityViolation& v) {
      if (++ax.rollbacks > kMaxRollbacks) {
        throw std::runtime_error(
            "sharded campaign: optimistic sync exceeded the rollback cap — "
            "the speculation fence is not making progress");
      }
      ax.fence = v.receiver_now;
      if (ax.obs) {
        obs::GroupObs co = ax.obs->coordinator_obs();
        co.instant(v.post_time, obs::Ev::kRollback,
                   static_cast<std::uint32_t>(ax.rollbacks),
                   static_cast<std::uint64_t>(v.dst));
        co.count_id(&obs::Ids::rollbacks);
      }
    }
  }
}

}  // namespace lifl::sys
