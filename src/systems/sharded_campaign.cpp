#include "src/systems/sharded_campaign.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/dataplane/config.hpp"
#include "src/dataplane/dataplane.hpp"
#include "src/sim/node.hpp"
#include "src/sim/random.hpp"
#include "src/sim/sharded_simulator.hpp"
#include "src/workload/population.hpp"

namespace lifl::sys {

namespace calib = sim::calib;

namespace {

/// Latency of a leaf-aggregate transfer between node groups: minimum
/// cross-group latency (propagation + switch + kernel wake-up) plus wire
/// time plus the fixed kernel receive cost. Always >= the sharded
/// simulator's lookahead, which is what makes the conservative windows
/// sound for this workload.
double cross_latency_secs(std::size_t bytes) {
  return calib::kCrossShardLatencySecs +
         static_cast<double>(bytes) / calib::kNicBytesPerSec +
         calib::kKernelFixedCycles / calib::kCpuHz;
}

struct CampaignState;

/// One node group: a single-node cluster with its own data plane, arrival
/// process and population slice. All fields are touched only by the shard
/// the group maps to (or by the coordinator between rounds).
struct Group {
  std::size_t id = 0;
  std::size_t shard = 0;
  sim::Simulator* sim = nullptr;
  std::unique_ptr<sim::Cluster> cluster;
  std::unique_ptr<dp::DataPlane> plane;
  wl::ClientPopulation population;
  std::unique_ptr<wl::ArrivalProcess> arrivals;
  sim::Rng rng{0};
  std::vector<std::unique_ptr<fl::AggregatorRuntime>> aggs;

  // Open-loop arrival chain state for the current round (one pending
  // arrival event at a time, profiles derived lazily per index).
  double epoch = 0.0;
  double next_rel = 0.0;
  std::uint64_t launched = 0;
  std::uint64_t target = 0;
  std::uint64_t participant_counter = 0;
  std::uint32_t round = 0;
  std::uint64_t total_uploads = 0;
};

struct CampaignState {
  const ShardedCampaignConfig* cfg = nullptr;
  sim::ShardedSimulator* sharded = nullptr;
  std::vector<Group> groups;
  fl::AggregatorRuntime* top = nullptr;  ///< current round's top (group 0)
  bool round_done = false;
  double completed_at = -1.0;
  std::uint64_t round_samples = 0;
};

/// Injects one relayed leaf aggregate into the top aggregator. Runs on the
/// top's shard; the update was detached from its source group (no lease, no
/// tensor) before crossing.
struct TopInject {
  CampaignState* st;
  fl::ModelUpdate u;
  void operator()() { st->top->inject(std::move(u)); }
};

/// Leaf on_result hook: detach the aggregate from its group and post it to
/// the top's shard with the cross-group latency. Identical for every group
/// (including group 0, whose post degenerates to a local schedule), so the
/// wiring does not depend on the group->shard mapping.
struct LeafRelay {
  CampaignState* st;
  std::size_t group;
  void operator()(fl::ModelUpdate u) const {
    u.lease.reset();
    u.tensor.reset();
    Group& g = st->groups[group];
    const double t = g.sim->now() + cross_latency_secs(u.logical_bytes);
    st->sharded->post(g.shard, st->groups[0].shard, t,
                      TopInject{st, std::move(u)});
  }
};

/// One open-loop arrival: upload a lazily derived client's update into the
/// group's node, then chain the next arrival. 16 bytes — Task-inline.
struct ArrivalFn {
  CampaignState* st;
  Group* g;
  void operator()() const {
    const std::size_t idx = static_cast<std::size_t>(
        (g->participant_counter++ * 2654435761ull) % g->population.size());
    const wl::ClientProfile profile = g->population[idx];
    fl::ModelUpdate u;
    u.model_version = g->round;
    u.producer = profile.id;
    u.sample_count = profile.samples;
    u.logical_bytes = st->cfg->model_bytes;
    g->plane->client_upload(0, std::move(u), profile.uplink_bytes_per_sec);
    ++g->launched;
    ++g->total_uploads;
    if (g->launched >= g->target) return;
    g->next_rel = g->arrivals->next_after(g->next_rel, g->rng);
    g->sim->schedule_at(g->epoch + g->next_rel, ArrivalFn{st, g});
  }
};

}  // namespace

ShardedCampaignResult run_sharded_campaign(const ShardedCampaignConfig& cfg) {
  if (cfg.groups == 0) {
    throw std::invalid_argument("sharded campaign: groups must be >= 1");
  }
  const auto wall0 = std::chrono::steady_clock::now();

  sim::ShardedSimulator::Config scfg;
  scfg.shards = cfg.shards;
  scfg.lookahead = calib::kCrossShardLatencySecs;
  sim::ShardedSimulator sharded(scfg);

  CampaignState st;
  st.cfg = &cfg;
  st.sharded = &sharded;
  st.groups.resize(cfg.groups);

  const std::size_t pop_per_group = std::max<std::size_t>(
      1, cfg.population / cfg.groups);
  wl::ArrivalProcess::Config acfg{cfg.peak_per_sec /
                                      static_cast<double>(cfg.groups),
                                  cfg.ramp_secs, cfg.diurnal_amplitude,
                                  cfg.diurnal_period_secs};

  for (std::size_t gi = 0; gi < cfg.groups; ++gi) {
    Group& g = st.groups[gi];
    g.id = gi;
    g.shard = gi % cfg.shards;
    g.sim = &sharded.shard(g.shard);
    g.cluster = std::make_unique<sim::Cluster>(*g.sim, 1);
    dp::DataPlaneConfig pcfg = dp::lifl_plane();
    pcfg.gateway_cores = cfg.gateway_cores;
    pcfg.gateway_queues = cfg.gateway_queues;
    g.plane = std::make_unique<dp::DataPlane>(
        *g.cluster, pcfg, sim::Rng(cfg.seed * 1000003 + gi));
    g.rng = sim::Rng(cfg.seed ^ (0x9e3779b97f4a7c15ull * (gi + 1)));
    g.population = wl::ClientPopulation::synthetic(
        pop_per_group, /*mobile=*/true, g.rng,
        /*first_id=*/1'000'000 + gi * pop_per_group);
    g.arrivals = std::make_unique<wl::ArrivalProcess>(acfg);
  }

  ShardedCampaignResult result;

  for (std::uint32_t round = 1; round <= cfg.rounds; ++round) {
    // Round epoch: the latest group clock — identical for every shard
    // count (each group's event times are shard-count independent).
    double epoch = 0.0;
    for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
      epoch = std::max(epoch, sharded.shard(s).now());
    }

    // ---- build the round's hierarchy (coordinator thread, sims idle).
    st.round_done = false;
    fl::AggregatorRuntime::Config tc;
    tc.id = 1;
    tc.node = 0;
    tc.role = fl::AggRole::kTop;
    tc.timing = cfg.timing;
    tc.goal = static_cast<std::uint32_t>(cfg.groups * cfg.leaves_per_group);
    tc.result_bytes = cfg.model_bytes;
    tc.expected_version = round;
    tc.on_result = [&st](fl::ModelUpdate u) {
      st.round_done = true;
      st.completed_at = st.groups[0].sim->now();
      st.round_samples = u.sample_count;
    };
    Group& g0 = st.groups[0];
    g0.aggs.push_back(std::make_unique<fl::AggregatorRuntime>(*g0.plane, tc));
    g0.aggs.back()->start();
    st.top = g0.aggs.back().get();

    for (std::size_t gi = 0; gi < cfg.groups; ++gi) {
      Group& g = st.groups[gi];
      fl::ParticipantId next_id = 10;
      for (std::size_t l = 0; l < cfg.leaves_per_group; ++l) {
        fl::AggregatorRuntime::Config lc;
        lc.id = next_id++;
        lc.node = 0;
        lc.role = fl::AggRole::kLeaf;
        lc.timing = cfg.timing;
        lc.goal = cfg.updates_per_leaf;
        lc.consumer = 0;  // results leave the group through the relay
        lc.result_bytes = cfg.model_bytes;
        lc.pull_from_pool = true;
        lc.expected_version = round;
        lc.on_result = LeafRelay{&st, gi};
        g.aggs.push_back(
            std::make_unique<fl::AggregatorRuntime>(*g.plane, lc));
        g.aggs.back()->start();
      }

      // Arm the round's open-loop arrival chain.
      g.round = round;
      g.epoch = epoch;
      g.launched = 0;
      g.target = cfg.leaves_per_group * cfg.updates_per_leaf;
      g.next_rel = g.arrivals->next_after(0.0, g.rng);
      g.sim->schedule_at(g.epoch + g.next_rel, ArrivalFn{&st, &g});
    }

    // ---- run the round to completion across all shards.
    sharded.run();
    if (!st.round_done) {
      throw std::runtime_error("sharded campaign: round " +
                               std::to_string(round) + " did not complete");
    }
    result.round_completed_at.push_back(st.completed_at);
    result.round_samples.push_back(st.round_samples);

    // Tear down the round's instances (coordinator thread, sims idle).
    st.top = nullptr;
    for (auto& g : st.groups) g.aggs.clear();
  }

  // ---- collect per-group aggregates (group-local event order only).
  result.groups.reserve(cfg.groups);
  double sim_end = 0.0;
  for (auto& g : st.groups) {
    ShardedGroupStats s;
    s.uploads = g.total_uploads;
    s.pool_pushed = g.plane->env(0).pool.total_pushed();
    s.gateway_busy_secs = g.plane->env(0).gateway.busy_time();
    s.gateway_wait_secs = g.plane->env(0).gateway.total_wait_time();
    s.cpu_cycles = g.cluster->total_cpu().total_cycles();
    result.groups.push_back(s);
    sim_end = std::max(sim_end, g.sim->now());
  }
  result.events = sharded.dispatched();
  result.cross_posts = sharded.cross_posts();
  result.windows = sharded.windows();
  result.sim_secs = sim_end;
  result.wall_secs = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall0)
                         .count();
  return result;
}

}  // namespace lifl::sys
