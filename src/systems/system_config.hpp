#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/control/placement.hpp"
#include "src/dataplane/config.hpp"
#include "src/fl/aggregator_runtime.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/time.hpp"

namespace lifl::sys {

/// How aggregator capacity tracks load.
enum class ScalingMode : std::uint8_t {
  kAlwaysOn,        ///< serverful: static, pre-provisioned, never scaled
  kReactive,        ///< Knative-style: spawn on demand; cold starts cascade
                    ///< up the aggregation chain (§2.3)
  kHierarchyAware,  ///< LIFL §5.2: hierarchy pre-planned from Q estimates
};

/// Where the top aggregator lives.
enum class TopPlacement : std::uint8_t {
  kDedicatedNode,  ///< a fixed node hosts the top (serverful §6.2 layout)
  kColocated,      ///< on the busiest data node — locality-aware (§5.1-5.3)
};

/// A complete FL-system design point: the data plane of Fig. 5 plus the
/// control-plane policies of §5. The named systems of the evaluation
/// (SF / SL / SL-H / LIFL and the Fig. 8 ablations) are factory presets.
struct SystemConfig {
  std::string name = "LIFL";
  dp::DataPlaneConfig plane = dp::lifl_plane();
  ctrl::PlacementPolicy placement = ctrl::PlacementPolicy::kBestFit;
  ScalingMode scaling = ScalingMode::kHierarchyAware;
  bool reuse = true;                       ///< §5.3 opportunistic reuse
  fl::AggTiming timing = fl::AggTiming::kEager;  ///< §5.4 eager aggregation
  bool hierarchical = true;                ///< false: single flat aggregator
  TopPlacement top = TopPlacement::kColocated;
  sim::NodeId dedicated_top_node = 0;

  /// Updates per leaf aggregator: LIFL keeps I small (=2) to maximize
  /// parallelism; the application-agnostic serverless baseline uses its
  /// concurrency target instead (coarser => less parallel).
  std::uint32_t updates_per_leaf = sim::calib::kUpdatesPerLeaf;

  double cold_start_secs = sim::calib::kLiflColdStartSecs;
  double cold_start_cycles = sim::calib::kLiflColdStartCycles;
  bool container_sidecar_idle = false;  ///< bill per-instance sidecar draw

  /// Maximum service capacity MC_i per node (computed offline, App. E).
  double node_max_capacity = 20.0;
  /// Per-node MC_i overrides for heterogeneous clusters (§5.1 footnote:
  /// "With heterogeneous nodes, MC_i may vary"). Empty => homogeneous at
  /// `node_max_capacity`; shorter than the cluster => remaining nodes use
  /// the homogeneous value.
  std::vector<double> node_capacities;
  /// Prior estimate of E_{i,t} before metrics exist.
  double default_exec_secs = 1.0;
  /// Reserved cores billed per always-on aggregator instance (serverful).
  /// The serverful fleet is sized for peak, so most instances idle at a
  /// fraction of a core between the arrivals they actually serve.
  double always_on_reserved_cores = 0.05;
};

/// LIFL: shm data plane, eBPF sidecar, BestFit locality-aware placement,
/// hierarchy-aware scaling, reuse, eager aggregation.
SystemConfig make_lifl();

/// SF: serverful baseline (Fig. 2a) — direct gRPC channels, static
/// always-on hierarchy on dedicated nodes, batch (lazy) rounds.
SystemConfig make_serverful();

/// SL: serverless baseline (Fig. 2b) — broker + container sidecar plane,
/// threshold autoscaling with a coarse concurrency target, reactive cold
/// starts, lazy aggregation.
SystemConfig make_serverless();

/// SL-H (Fig. 8 baseline): LIFL's shm data plane under a baseline
/// serverless control plane — least-connection spreading, reactive scaling,
/// no reuse, lazy timing, container-grade cold starts.
SystemConfig make_sl_h();

/// Fig. 8 ablations: SL-H plus ① locality-aware placement, ② hierarchy
/// planning, ③ aggregator reuse, ④ eager aggregation, applied cumulatively.
SystemConfig make_lifl_ablation(bool p1_placement, bool p2_planning,
                                bool p3_reuse, bool p4_eager);

}  // namespace lifl::sys
