#include "src/systems/system_config.hpp"

namespace lifl::sys {

namespace calib = sim::calib;

SystemConfig make_lifl() {
  SystemConfig c;
  c.name = "LIFL";
  c.plane = dp::lifl_plane();
  c.placement = ctrl::PlacementPolicy::kBestFit;
  c.scaling = ScalingMode::kHierarchyAware;
  c.reuse = true;
  c.timing = fl::AggTiming::kEager;
  c.top = TopPlacement::kColocated;
  c.updates_per_leaf = calib::kUpdatesPerLeaf;
  c.cold_start_secs = calib::kLiflColdStartSecs;
  c.cold_start_cycles = calib::kLiflColdStartCycles;
  return c;
}

SystemConfig make_serverful() {
  SystemConfig c;
  c.name = "SF";
  c.plane = dp::serverful_plane();
  // The serverful stack spreads clients across its fixed aggregator fleet
  // and aggregates each round as a batch (Bonawitz et al.).
  c.placement = ctrl::PlacementPolicy::kWorstFit;
  c.scaling = ScalingMode::kAlwaysOn;
  c.reuse = true;  // the static fleet is permanently warm
  c.timing = fl::AggTiming::kLazy;
  c.top = TopPlacement::kDedicatedNode;
  // A static deployment cannot re-shard per round; its trees are coarser
  // than LIFL's load-tailored I=2 (provisioned for capacity, not latency).
  c.updates_per_leaf = 4;
  c.cold_start_secs = 0.0;
  c.cold_start_cycles = 0.0;
  return c;
}

SystemConfig make_serverless() {
  SystemConfig c;
  c.name = "SL";
  c.plane = dp::serverless_plane();
  c.placement = ctrl::PlacementPolicy::kWorstFit;  // least-connection
  c.scaling = ScalingMode::kReactive;
  c.reuse = false;
  c.timing = fl::AggTiming::kLazy;
  c.top = TopPlacement::kDedicatedNode;
  // Threshold autoscaling sizes aggregators to a concurrency target
  // (aut, 2023a/b), agnostic of the aggregation hierarchy: coarse fan-in.
  c.updates_per_leaf = 10;
  // Reactive scale-from-zero: autoscaler reaction window + pod cold start,
  // paid per level of the chain (§2.3 cascading cold starts); pod startup
  // burns full framework-import CPU (§6.3 attributes SL's CPU cost largely
  // to start-up).
  c.cold_start_secs =
      calib::kKnativeReactionSecs + calib::kContainerColdStartSecs;
  c.cold_start_cycles = calib::kKnativePodStartCycles;
  c.container_sidecar_idle = true;
  return c;
}

SystemConfig make_sl_h() {
  SystemConfig c;
  c.name = "SL-H";
  // Same data plane as LIFL (§6.1: "SL-H employs LIFL's shared memory data
  // plane"), baseline Knative control plane on top.
  c.plane = dp::lifl_plane();
  c.placement = ctrl::PlacementPolicy::kWorstFit;  // "Least Connection"
  c.scaling = ScalingMode::kReactive;
  c.reuse = false;
  c.timing = fl::AggTiming::kLazy;
  c.top = TopPlacement::kDedicatedNode;
  c.updates_per_leaf = calib::kUpdatesPerLeaf;
  c.cold_start_secs = calib::kContainerColdStartSecs;
  c.cold_start_cycles = calib::kContainerColdStartCycles;
  return c;
}

SystemConfig make_lifl_ablation(bool p1_placement, bool p2_planning,
                                bool p3_reuse, bool p4_eager) {
  SystemConfig c = make_sl_h();
  c.name = "SL-H";
  if (p1_placement) {
    c.name += "+p1";
    c.placement = ctrl::PlacementPolicy::kBestFit;
    c.top = TopPlacement::kColocated;  // locality: top rides the data
  }
  if (p2_planning) {
    c.name += "+p2";
    c.scaling = ScalingMode::kHierarchyAware;  // pre-planned, no cascade
  }
  if (p3_reuse) {
    c.name += "+p3";
    c.reuse = true;
  }
  if (p4_eager) {
    c.name += "+p4";
    c.timing = fl::AggTiming::kEager;
  }
  return c;
}

}  // namespace lifl::sys
