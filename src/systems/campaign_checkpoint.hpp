#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/systems/campaign_state.hpp"
#include "src/systems/sharded_campaign.hpp"

namespace lifl::sys {

/// Where a snapshot cuts the campaign: the in-progress round and the mark
/// (a point on the global k·checkpoint_every_secs simulated-time grid) the
/// blob resumes from. `mark < 0` means a round boundary (nothing of the
/// round had run yet).
/// In async mode (HierarchyMode::kAsync) the campaign is one continuous
/// stream whose boundary is the stream start, so `round` is always 1 and
/// the whole replay window is bounded by the stream prefix up to the mark.
struct CheckpointCut {
  std::uint32_t round = 1;
  double mark = -1.0;
};

/// Versioned, length-prefixed binary snapshot of a sharded mega-campaign.
///
/// **What is serialized.** The campaign's durable cross-round state at the
/// boundary of the in-progress round: per-group RNG streams and arrival
/// counters, data-plane statistics (update pool, RSS gateway queues, node
/// resources, CPU ledgers, eBPF metrics map, broker and transfer counters
/// — every accumulator restored bit-exactly, because floating-point
/// running sums are order-sensitive), shm object-store generator + stats,
/// the campaign planner's EWMA/hysteresis and server-version slots, the
/// streaming hierarchy's
/// warm pools and leaf-slot tables, the warm top runtime, per-shard clocks
/// and the partial campaign telemetry.
///
/// **What is re-materialized.** In-flight simulator events (closures in
/// the calendar queues, parked resource completions, pool waiters) are not
/// serialized — closures do not survive a process boundary. Instead the
/// snapshot records the *cut*: restore rebuilds the campaign at the round
/// boundary and deterministically re-executes the round's prefix up to the
/// cut mark, which regenerates the exact in-flight event set (the sharded
/// core's pausing is bit-transparent — see ShardedSimulator::run_to). The
/// cost is bounded by one round of compute; the result is bitwise
/// identical to never having stopped, from *any* cut point — mid-round,
/// mid-re-plan, or during a leaf drain (tests/campaign_checkpoint_test).
///
/// Blobs are rejected (sim::SnapshotError) on magic/version mismatch,
/// truncation, section drift, or a config/shard-count digest mismatch —
/// never undefined behavior.
class CampaignCheckpoint {
 public:
  static constexpr std::uint64_t kMagic = 0x50414e534c46494cull;  // LIFLSNAP
  /// v2: per-round effective FedAvg weights in the telemetry section and
  /// per-group server-version slots in the planner section (async mode).
  /// v3: fault/recovery telemetry — per-round refold counts and cumulative
  /// crash/retry/quorum counters in the result section, per-group client
  /// upload fault counters in the group section, and the fault-plan +
  /// quorum config fields folded into the digest.
  /// v4: edge-client lifecycle — per-group resumable-upload counters,
  /// per-tier participation arrays and selection-strategy score state in
  /// the group section; the auto-quota EWMA in the result section; and the
  /// tier-mix, lifecycle, selector and auto-quota config fields folded
  /// into the digest.
  static constexpr std::uint32_t kVersion = 4;

  /// Digest of every config field that shapes the simulation (not the
  /// paths/sinks). A blob only restores under the digest it was cut from.
  static std::uint64_t config_digest(const ShardedCampaignConfig& cfg);

  /// Encode the durable round-boundary image of `st` (call at the top of a
  /// round, before arming — shards idle, every queue quiescent; throws
  /// std::logic_error otherwise). `partial` is the telemetry of the
  /// completed rounds; `next_round` the round about to be armed.
  static std::vector<std::uint8_t> encode_boundary(
      const detail::CampaignState& st, const ShardedCampaignResult& partial,
      std::uint32_t next_round);

  /// A full snapshot blob: the boundary image plus the cut trailer.
  static std::vector<std::uint8_t> with_cut(
      const std::vector<std::uint8_t>& boundary, double mark);

  /// Byte overhead `with_cut` adds — so the in-sim cost pulse can bill the
  /// final blob size before the blob exists.
  static std::size_t cut_trailer_bytes();

  /// Decode `blob` and apply it onto a freshly constructed campaign
  /// (groups/planner built, nothing armed, clocks at zero). Returns the
  /// cut to resume from. Throws sim::SnapshotError on any malformed or
  /// mismatched blob.
  static CheckpointCut restore(const std::vector<std::uint8_t>& blob,
                               detail::CampaignState& st,
                               ShardedCampaignResult& partial);

  /// Atomic (write-temp-then-rename) blob persistence, and its inverse.
  static void write_file(const std::string& path,
                         const std::vector<std::uint8_t>& blob);
  static std::vector<std::uint8_t> read_file(const std::string& path);
};

}  // namespace lifl::sys
