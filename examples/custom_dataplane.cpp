// Exploring the data-plane design space (Fig. 5) with the public API.
//
// A platform researcher can compose any point in LIFL's data-plane space —
// plane kind x sidecar kind x broker — and measure what a single model-
// update transfer between two co-located aggregators costs. This example
// sweeps the named architectures plus two hypothetical hybrids the paper
// does not ship (an eBPF sidecar with a broker still in the path, and a
// container sidecar over direct channels), reproducing a Fig. 7-style
// comparison for all of them.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_custom_dataplane

#include <cstdio>
#include <string>
#include <vector>

#include "src/dataplane/dataplane.hpp"
#include "src/fl/model_spec.hpp"
#include "src/sim/calibration.hpp"
#include "src/systems/table.hpp"

namespace {

using namespace lifl;

struct Measurement {
  double latency_secs = 0.0;
  double gigacycles = 0.0;
};

/// One leaf->top transfer of `bytes` on a fresh single-node world.
Measurement measure_transfer(dp::DataPlaneConfig cfg, std::size_t bytes) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, 1);
  dp::DataPlane plane(cluster, cfg, sim::Rng(99));

  bool delivered = false;
  double delivered_at = -1.0;
  plane.register_consumer(2, 0, [&](fl::ModelUpdate u) {
    // The destination still pays its Recv cost to own the payload.
    const double recv_secs = plane.recv_cycles(u) / sim::calib::kCpuHz;
    cluster.node(0).cores().acquire(recv_secs, [&, recv_cycles =
                                                       plane.recv_cycles(u)] {
      cluster.node(0).cpu().add(sim::CostTag::kSerialization, recv_cycles);
      delivered = true;
      delivered_at = sim.now();
    });
  });

  fl::ModelUpdate u;
  u.model_version = 1;
  u.sample_count = 600;
  u.logical_bytes = bytes;
  plane.send(/*src=*/1, /*src_node=*/0, /*dst=*/2, std::move(u));
  sim.run();
  if (!delivered) {
    std::fprintf(stderr, "transfer did not complete\n");
    std::exit(1);
  }
  plane.settle_idle_costs();
  return {delivered_at, cluster.node(0).cpu().total_cycles() / 1e9};
}

}  // namespace

int main() {
  using dp::DataPlaneConfig;
  using dp::PlaneKind;
  using dp::SidecarKind;

  // The three named architectures plus two custom points in the space.
  std::vector<std::pair<std::string, DataPlaneConfig>> designs = {
      {"LIFL (shm + eBPF)", dp::lifl_plane()},
      {"serverful (direct gRPC)", dp::serverful_plane()},
      {"serverless (sidecar+broker)", dp::serverless_plane()},
      {"custom: direct + container sidecar",
       {PlaneKind::kServerless, SidecarKind::kContainer, /*use_broker=*/false}},
      {"custom: broker, no sidecar",
       {PlaneKind::kServerless, SidecarKind::kNone, /*use_broker=*/true}},
  };

  const auto model = fl::models::resnet34();
  std::printf("Single %zu MB update transfer between co-located "
              "aggregators, per data-plane design:\n",
              model.bytes() / 1'000'000);

  sys::Table t({"design", "latency(s)", "CPU(Gcycles)"});
  for (const auto& [name, cfg] : designs) {
    const Measurement m = measure_transfer(cfg, model.bytes());
    t.row({name, sys::fmt(m.latency_secs, 2), sys::fmt(m.gigacycles, 2)});
  }
  t.print("ResNet-34 transfer cost across the Fig. 5 design space");

  std::printf(
      "\nEach stage the architecture adds (sidecar interception, broker\n"
      "hops, kernel crossings) shows up in both latency and cycles; the\n"
      "shm+eBPF plane pays only the object-store write and a key pass.\n");
  return 0;
}
