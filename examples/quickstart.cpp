// Quickstart: real federated learning on the LIFL platform.
//
// Trains a small MLP with FedAvg over a synthetic non-IID federated dataset.
// Every moving part is real: clients run actual SGD, their parameter tensors
// travel through the simulated LIFL data plane (gateway -> shared-memory
// object store -> leaf/middle/top aggregators), and the hierarchy is planned,
// placed and reused by LIFL's control plane. Test accuracy is measured on a
// held-out set after every round.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart

#include <cstdio>
#include <memory>

#include "src/dataplane/dataplane.hpp"
#include "src/ml/dataset.hpp"
#include "src/ml/mlp.hpp"
#include "src/ml/train.hpp"
#include "src/sim/node.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"
#include "src/systems/aggregation_service.hpp"
#include "src/systems/system_config.hpp"

int main() {
  using namespace lifl;

  constexpr std::size_t kClients = 16;
  constexpr std::size_t kRounds = 12;
  constexpr double kDirichletAlpha = 0.5;  // non-IID label skew

  sim::Rng rng(7);

  // ---- The learning task: 10-class Gaussian blobs, non-IID client shards.
  ml::SyntheticTaskConfig task;
  ml::FederatedDataGen gen(task, rng.split(1));
  const ml::Dataset test_set = gen.make_test_set(2000);
  std::vector<ml::Dataset> shards;
  sim::Rng shard_rng = rng.split(2);
  for (std::size_t c = 0; c < kClients; ++c) {
    shards.push_back(gen.make_client_shard(400, kDirichletAlpha, shard_rng));
  }

  // ---- The global model.
  ml::Mlp global({task.feature_dim, 64, 32, task.num_classes});
  sim::Rng init_rng = rng.split(3);
  global.init(init_rng);
  std::printf("model: MLP %zu params (%zu bytes/update)\n",
              global.param_count(), global.param_count() * 4);
  std::printf("round  0: accuracy %.3f (untrained)\n",
              global.accuracy(test_set));

  // ---- The platform: a 2-node cluster running the LIFL system.
  sim::Simulator sim;
  sim::Cluster cluster(sim, 2);
  dp::DataPlane plane(cluster, dp::lifl_plane(/*real_payloads=*/true),
                      rng.split(4));
  sys::SystemConfig lifl = sys::make_lifl();
  lifl.node_max_capacity = 10;  // pack ~10 updates per node
  sys::AggregationService service(cluster, plane, lifl);

  ml::LocalTrainConfig train_cfg;  // SGD, batch 32, lr 0.01 (paper §6.2)
  sim::Rng client_rng = rng.split(5);

  for (std::size_t round = 1; round <= kRounds; ++round) {
    // Clients train locally from the current global model (for real).
    std::vector<ml::LocalUpdate> updates;
    for (std::size_t c = 0; c < kClients; ++c) {
      updates.push_back(ml::local_train(global, global.params(), shards[c],
                                        train_cfg, client_rng));
    }

    // Place the incoming updates and arm the aggregation hierarchy.
    const auto assignment = service.place_updates(kClients);
    std::vector<std::uint32_t> counts(cluster.size(), 0);
    for (auto n : assignment) counts[n]++;

    bool completed = false;
    std::uint64_t fold_allocs = 0, fold_hits = 0;
    service.arm(counts, static_cast<std::uint32_t>(round),
                global.param_count() * 4,
                [&](const sys::AggregationService::BatchResult& batch) {
                  completed = true;
                  fold_allocs = batch.tensor_allocs;
                  fold_hits = batch.tensor_pool_hits;
                  // Install the aggregated parameters as the new global model.
                  global.set_params(*batch.global_update.tensor);
                });

    // Upload each client's real parameter tensor through the data plane.
    for (std::size_t c = 0; c < kClients; ++c) {
      fl::ModelUpdate u;
      u.model_version = static_cast<std::uint32_t>(round);
      u.producer = 1000 + c;
      u.sample_count = updates[c].sample_count;
      u.logical_bytes = global.param_count() * 4;
      u.tensor = updates[c].params;  // pooled, zero-copy into the plane
      plane.client_upload(assignment[c], std::move(u), /*uplink=*/100e6);
    }

    sim.run();
    if (!completed) {
      std::printf("round %2zu: FAILED to complete aggregation\n", round);
      return 1;
    }
    service.finish_batch();
    std::printf("round %2zu: accuracy %.3f  (sim time %.2fs, %u created, "
                "%u reused, fold pool %llu hits / %llu allocs)\n",
                round, global.accuracy(test_set), sim.now(),
                service.total_created(), service.total_reused(),
                static_cast<unsigned long long>(fold_hits),
                static_cast<unsigned long long>(fold_allocs));
  }

  std::printf("\nshared-memory stats (node 0): %llu puts, %llu recycled, "
              "peak %.1f MB\n",
              static_cast<unsigned long long>(plane.env(0).store.stats().puts),
              static_cast<unsigned long long>(
                  plane.env(0).store.stats().recycled_buffers),
              plane.env(0).store.stats().peak_bytes / 1e6);
  return 0;
}
