// Asynchronous FL on LIFL's data plane (Fig. 11; the paper's stated future
// work, shipped here as an extension).
//
// Unlike synchronous rounds, asynchronous FL never waits for a cohort: a
// fixed concurrency of clients trains continuously, every completed update
// streams into the aggregation service, and each `goal` accepted updates
// bumps the global model version (FedBuff/PAPAYA-style buffered
// aggregation). This is a *recurring* AggregatorRuntime — the same runtime
// the campaigns use, with the caller owning the version counter and
// `live_version`/`max_staleness` dropping updates trained against a
// version that is too old. The example contrasts eager and lazy folding:
// same goal, same arrivals — eager publishes versions sooner because Recv
// and Agg overlap the arrival gaps.
//
// The full campaign-scale version of this mode is
// `examples/mega_campaign --hierarchy=async` (HierarchyMode::kAsync).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_async_aggregation

#include <cstdio>
#include <functional>
#include <vector>

#include "src/fl/aggregator_runtime.hpp"
#include "src/fl/model_spec.hpp"
#include "src/sim/random.hpp"
#include "src/systems/table.hpp"

namespace {

using namespace lifl;

struct AsyncOutcome {
  std::vector<double> version_times;
  std::uint32_t stale_dropped = 0;
};

AsyncOutcome run_async(fl::AggTiming timing, std::uint32_t goal,
                       std::uint32_t concurrency, double horizon_secs) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, 1);
  dp::DataPlane plane(cluster, dp::lifl_plane(), sim::Rng(17));

  AsyncOutcome out;
  std::uint32_t version = 1;  // caller-owned: bumped per emission
  fl::AggregatorRuntime::Config cfg;
  cfg.id = 1;
  cfg.node = 0;
  cfg.role = fl::AggRole::kTop;
  cfg.timing = timing;
  cfg.goal = goal;
  cfg.recurring = true;  // FedBuff: every `goal` updates emit a version
  cfg.pull_from_pool = true;
  cfg.result_bytes = fl::models::resnet152().bytes();
  cfg.live_version = &version;
  cfg.max_staleness = 2;  // drop updates >2 versions behind
  cfg.on_result = [&](fl::ModelUpdate) {
    out.version_times.push_back(sim.now());
    ++version;
  };
  fl::AggregatorRuntime rt(plane, cfg);
  rt.start();

  // A continuous client stream: each of `concurrency` clients trains for a
  // heterogeneous interval, uploads, and immediately starts over with
  // whatever global version is current at that moment.
  sim::Rng rng(23);
  struct Client {
    std::uint64_t id;
    double speed;
  };
  std::vector<Client> clients;
  for (std::uint32_t c = 0; c < concurrency; ++c) {
    clients.push_back({3000 + c, 0.7 + 0.6 * rng.uniform()});
  }
  std::function<void(std::size_t)> launch = [&](std::size_t idx) {
    const double train = 4.0 * clients[idx].speed * (0.9 + 0.2 * rng.uniform());
    sim.schedule_after(train, [&, idx]() {
      if (sim.now() > horizon_secs) return;  // campaign over
      fl::ModelUpdate u;
      u.model_version = version;  // trained from this global version
      u.producer = clients[idx].id;
      u.sample_count = 500;
      u.logical_bytes = fl::models::resnet152().bytes();
      plane.client_upload(0, std::move(u), 300e6);
      launch(idx);  // train again, from the new global
    });
  };
  for (std::size_t c = 0; c < clients.size(); ++c) launch(c);

  sim.run();
  out.stale_dropped = rt.stale_dropped();
  rt.stop();  // under-goal buffered updates return to the pool
  return out;
}

}  // namespace

int main() {
  constexpr std::uint32_t kGoal = 8;         // updates per version (Fig. 11)
  constexpr std::uint32_t kConcurrency = 8;  // clients training at once
  constexpr double kHorizon = 120.0;         // seconds of campaign

  std::printf("Asynchronous FL (goal=%u, concurrency=%u, %gs horizon)\n",
              kGoal, kConcurrency, kHorizon);

  const AsyncOutcome eager =
      run_async(lifl::fl::AggTiming::kEager, kGoal, kConcurrency, kHorizon);
  const AsyncOutcome lazy =
      run_async(lifl::fl::AggTiming::kLazy, kGoal, kConcurrency, kHorizon);

  lifl::sys::Table t({"version", "eager at(s)", "lazy at(s)"});
  const std::size_t versions =
      std::min(eager.version_times.size(), lazy.version_times.size());
  for (std::size_t v = 0; v < versions; ++v) {
    t.row({std::to_string(v + 1), lifl::sys::fmt(eager.version_times[v], 1),
           lifl::sys::fmt(lazy.version_times[v], 1)});
  }
  t.print("Global model version timeline, eager vs lazy folding");

  std::printf("\neager: %zu versions (%u stale updates dropped)\n",
              eager.version_times.size(), eager.stale_dropped);
  std::printf("lazy : %zu versions (%u stale updates dropped)\n",
              lazy.version_times.size(), lazy.stale_dropped);
  return 0;
}
