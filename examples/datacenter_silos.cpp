// Cross-silo FL between datacenter-grade participants — the §6.2
// ResNet-152 setup: a handful of always-on organizations (hospitals,
// banks, branch datacenters) jointly train a heavyweight model whose
// 232 MB updates make the data plane the bottleneck.
//
// The example contrasts the provisioning question a platform owner faces:
// keep a serverful aggregation fleet warm around the clock (SF), or let
// LIFL spin the hierarchy up per round. It prints the time breakdown and
// the cost of idling capacity between the slow, compute-heavy local
// training phases.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_datacenter_silos

#include <cstdio>

#include "src/systems/system_config.hpp"
#include "src/systems/table.hpp"
#include "src/systems/training_experiment.hpp"

int main() {
  using namespace lifl;

  sys::TrainingConfig silos;
  silos.model = fl::models::resnet152();
  silos.cluster_nodes = 5;
  silos.population = 40;        // enrolled organizations
  silos.active_per_round = 15;  // participate each round
  silos.mobile_clients = false; // dedicated servers, always on
  silos.base_train_secs = sim::calib::kTrainSecsResNet152;
  silos.curve = ml::AccuracyModel::resnet152_femnist();
  silos.max_rounds = 10;

  std::printf("Cross-silo FL: %zu orgs, %zu per round, ResNet-152 "
              "(%zu MB updates)\n\n",
              silos.population, silos.active_per_round,
              silos.model.bytes() / 1'000'000);

  sys::Table summary({"system", "mean round(s)", "mean ACT(s)",
                      "CPU-h total", "peak active agg"});
  for (const auto& system : {sys::make_serverful(), sys::make_lifl()}) {
    sys::TrainingExperiment experiment(system, silos);
    const sys::TrainingResult result = experiment.run();

    double round_secs = 0.0;
    double act = 0.0;
    for (const auto& r : result.rounds) {
      round_secs += r.completed_at - r.started_at;
      act += r.act;
    }
    std::size_t peak = 0;
    for (const auto& [when, count] : result.active_aggs) {
      (void)when;
      peak = std::max(peak, count);
    }
    summary.row({result.system,
                 sys::fmt(round_secs / result.rounds.size(), 1),
                 sys::fmt(act / result.rounds.size(), 1),
                 sys::fmt(result.cpu_hours_total, 2), std::to_string(peak)});
  }
  summary.print("Serverful fleet vs LIFL for heavyweight cross-silo rounds");

  std::printf(
      "\nWith 15 updates/round and ~35 s of local training between them,\n"
      "the serverful fleet bills its reservation through every idle gap;\n"
      "LIFL only runs aggregators while intermediate updates exist.\n");
  return 0;
}
