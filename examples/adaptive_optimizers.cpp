// Federated optimization study on the LIFL platform: plain FedAvg vs the
// adaptive server optimizers (FedAvgM / FedAdagrad / FedYogi / FedAdam,
// Reddi et al. 2020), training a real convolutional model (TinyResNet) on
// a non-IID synthetic image task.
//
// Every round runs through the actual platform: client tensors are
// uploaded through the gateway into shared memory, the hierarchy
// aggregates them (eager, with reuse), and the *server optimizer* folds
// the round average into the global model. This is the §7 positioning of
// LIFL — the system substrate under interchangeable FL algorithms.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_adaptive_optimizers

#include <cstdio>
#include <memory>
#include <vector>

#include "src/fl/fedavg.hpp"
#include "src/fl/server_optimizer.hpp"
#include "src/ml/conv.hpp"
#include "src/systems/aggregation_service.hpp"
#include "src/systems/system_config.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

struct StudyResult {
  std::vector<double> accuracy_per_round;
};

StudyResult run_study(fl::ServerOptimizerKind kind, int rounds) {
  constexpr std::size_t kClients = 12;
  constexpr double kAlpha = 0.3;  // strong non-IID label skew

  ml::TinyResNet::Config ncfg;  // 8x8 images, 10 classes
  ml::TinyResNet global(ncfg);
  sim::Rng rng(41);
  global.init(rng);

  ml::ImageDataGen gen(ncfg, sim::Rng(42));
  const ml::Dataset test = gen.make_test_set(320);
  sim::Rng shard_rng(43);
  std::vector<ml::Dataset> shards;
  for (std::size_t c = 0; c < kClients; ++c) {
    shards.push_back(gen.make_client_shard(120, kAlpha, shard_rng));
  }

  fl::ServerOptimizer::Config scfg;
  scfg.kind = kind;
  // First-order kinds take the full pseudo-gradient. Among the adaptive
  // kinds, Adagrad's denominator only grows, so it wants a larger server
  // rate than the EWMA-denominator kinds.
  switch (kind) {
    case fl::ServerOptimizerKind::kFedAvg:
    case fl::ServerOptimizerKind::kFedAvgM:
      scfg.lr = 1.0;
      break;
    case fl::ServerOptimizerKind::kFedAdagrad:
      scfg.lr = 0.1;
      break;
    case fl::ServerOptimizerKind::kFedYogi:
    case fl::ServerOptimizerKind::kFedAdam:
      scfg.lr = 0.03;
      break;
  }
  fl::ServerOptimizer server(scfg);

  // The platform: 2 nodes, LIFL system, real payloads in the object store.
  sim::Simulator sim;
  sim::Cluster cluster(sim, 2);
  sys::SystemConfig lifl = sys::make_lifl();
  lifl.plane = dp::lifl_plane(/*real_payloads=*/true);
  lifl.node_max_capacity = 8;
  dp::DataPlane plane(cluster, lifl.plane, sim::Rng(44));
  sys::AggregationService service(cluster, plane, lifl);

  StudyResult result;
  sim::Rng client_rng(45);
  for (int round = 1; round <= rounds; ++round) {
    // Local training: 2 epochs of batch-8 SGD per client shard.
    std::vector<std::pair<ml::Tensor, std::uint64_t>> updates;
    for (const auto& shard : shards) {
      ml::TinyResNet local(ncfg);
      local.set_params(global.params());
      std::vector<std::size_t> idx(shard.labels.size());
      for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      ml::Tensor grad;
      for (int epoch = 0; epoch < 2; ++epoch) {
        for (std::size_t b = 0; b + 8 <= idx.size(); b += 8) {
          std::vector<std::size_t> batch(idx.begin() + b, idx.begin() + b + 8);
          local.gradient(shard, batch, grad);
          local.sgd_step(grad, 0.15f);
        }
      }
      updates.emplace_back(local.params(), shard.labels.size());
    }

    // Ship the round through the platform.
    const auto assignment = service.place_updates(kClients);
    std::vector<std::uint32_t> counts(cluster.size(), 0);
    for (auto n : assignment) counts[n]++;
    bool completed = false;
    service.arm(counts, static_cast<std::uint32_t>(round),
                global.param_count() * 4,
                [&](const sys::AggregationService::BatchResult& batch) {
                  completed = true;
                  ml::Tensor params = global.params();
                  server.step(params, *batch.global_update.tensor);
                  global.set_params(params);
                });
    for (std::size_t c = 0; c < kClients; ++c) {
      fl::ModelUpdate u;
      u.model_version = static_cast<std::uint32_t>(round);
      u.producer = 2000 + c;
      u.sample_count = updates[c].second;
      u.logical_bytes = global.param_count() * 4;
      u.tensor = std::make_shared<const ml::Tensor>(updates[c].first);
      plane.client_upload(assignment[c], std::move(u), 100e6);
    }
    sim.run();
    if (!completed) {
      std::fprintf(stderr, "round %d failed\n", round);
      std::exit(1);
    }
    service.finish_batch();
    result.accuracy_per_round.push_back(global.accuracy(test));
  }
  return result;
}

}  // namespace

int main() {
  constexpr int kRounds = 10;
  std::printf("Server-optimizer study: TinyResNet on a non-IID image task, "
              "%d federated rounds through LIFL\n",
              kRounds);

  const std::vector<fl::ServerOptimizerKind> kinds = {
      fl::ServerOptimizerKind::kFedAvg, fl::ServerOptimizerKind::kFedAvgM,
      fl::ServerOptimizerKind::kFedAdagrad, fl::ServerOptimizerKind::kFedYogi,
      fl::ServerOptimizerKind::kFedAdam};

  std::vector<StudyResult> results;
  for (const auto kind : kinds) results.push_back(run_study(kind, kRounds));

  std::vector<std::string> headers{"round"};
  for (const auto kind : kinds) headers.push_back(std::string(to_string(kind)));
  sys::Table t(headers);
  for (int r = 0; r < kRounds; ++r) {
    std::vector<std::string> row{std::to_string(r + 1)};
    for (const auto& res : results) {
      row.push_back(sys::fmt(res.accuracy_per_round[r] * 100.0, 1) + "%");
    }
    t.row(row);
  }
  t.print("Test accuracy per round, by server optimizer");
  return 0;
}
