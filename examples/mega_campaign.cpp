// Million-client FL campaign — the scale the ROADMAP's north star asks for
// and the reason the event core is a calendar queue rather than one big
// heap.
//
// A population of 1,000,000 phone-class clients is described *lazily*: the
// ClientPopulation holds an RNG root and derives a client's profile from
// its index on demand, so the campaign never materializes a million
// ClientProfiles. Uploads are driven open-loop by an ArrivalProcess
// (Poisson, linear ramp, diurnal wave) that keeps exactly one pending
// arrival event; peak resident state is O(active clients) — in-flight
// uploads plus the aggregation hierarchy — not O(population).
//
// Each round, the arriving updates land on an 8-node LIFL cluster and flow
// through a two-level hierarchy (per-node leaf aggregators pulling from the
// node pool, one top aggregator), under eager and under lazy timing
// (Fig. 1). The example reports per-round wall time, simulated time, event
// throughput, and the process's peak RSS as evidence of the O(active)
// memory claim.
//
// With `--shards=K` the campaign runs on the sharded simulator core: the 8
// nodes become 8 independent groups dealt onto K worker threads, leaf
// aggregates cross groups through conservative-time-window mailboxes, and
// the results are identical for every K (the group wiring, not the thread
// count, defines the model) — see src/systems/sharded_campaign.
//
// With `--hierarchy=planned` the sharded campaign runs the streaming
// hierarchy orchestrator (src/systems/streaming_hierarchy): planner-driven
// multi-level trees sized from EWMA'd pending estimates, mid-round
// re-planning (`--replan-interval=SECS`), and warm cross-round instance
// reuse (`--reuse=0` disables it for the churn A/B) — steady-state rounds
// spawn zero new aggregator runtimes. `--hierarchy=fixed` keeps the
// two-level destroy-and-respawn baseline.
//
// With `--hierarchy=async` the round barrier disappears entirely
// (HierarchyMode::kAsync): the campaign is one continuous stream, leaves
// are FedBuff buffers sealing on count or `--async-deadline=SECS`, folds
// are FedAsync staleness-weighted against the broadcast server version,
// and `rounds` counts emitted model versions. `--stragglers=F` delays that
// fraction of uploads by `--straggler-delay=SECS` (both modes — the
// sync-vs-async A/B knob of bench/fig9_time_to_accuracy).
//
// With `--device-tiers=F,M,I` the population splits into flagship /
// mid-range / IoT compute+uplink classes (shares summing to 1), and
// `--disconnect-rate=F` runs the flaky client lifecycle on top: sessions
// disconnect mid-upload at the tier-scaled rate, park the update in a
// bounded offline queue, and resume chunk-wise from the last acked offset.
// `--selector=random|scored|cluster` picks the client-selection strategy
// (scored/cluster learn per-tier completion telemetry and steer away from
// straggler tiers). The summary then adds a per-tier participation table.
//
// With `--sync-mode=conservative|adaptive|optimistic` the sharded core
// picks its barrier discipline (src/sim/sharded_simulator): fixed
// conservative windows, promise-widened adaptive windows that skip the
// empty barriers of diurnal troughs, or optimistic speculation with
// rollback-replay on straggling cross-posts. Results are bitwise identical
// across all three and across shard counts; the summary reports windows
// skipped and rollbacks taken.
//
// With `--trace=FILE.json` the run records a sim-time trace (round spans,
// aggregator lifecycle, upload sessions, barrier windows) into per-shard
// ring buffers (`--trace-ring-kb=N` caps each ring) and exports Chrome
// trace-event JSON loadable at https://ui.perfetto.dev; `--metrics=F.jsonl`
// writes per-round rows plus a registry summary. Recording is passive:
// results are bitwise identical with and without it.
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/examples/mega_campaign            # full 1M clients
//               ./build/examples/mega_campaign 100000     # quicker slice
//               ./build/examples/mega_campaign --shards=4 # threaded core
//               ./build/examples/mega_campaign --shards=4 --hierarchy=planned
//               ./build/examples/mega_campaign --shards=4 --hierarchy=async
//               ./build/examples/mega_campaign --device-tiers=0.4,0.3,0.3 \
//                   --disconnect-rate=0.2 --selector=scored

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/dataplane/config.hpp"
#include "src/dataplane/dataplane.hpp"
#include "src/fl/aggregator_runtime.hpp"
#include "src/sim/node.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"
#include "src/systems/sharded_campaign.hpp"
#include "src/systems/table.hpp"
#include "src/workload/population.hpp"

namespace {

using namespace lifl;

struct CampaignConfig {
  std::size_t population = 1'000'000;
  std::size_t nodes = 8;
  std::size_t rounds = 4;
  std::uint32_t updates_per_leaf = 500;
  std::size_t leaves_per_node = 62;
  std::size_t model_bytes = 100'000;  ///< compressed mobile update
  wl::ArrivalProcess::Config arrivals{/*peak_per_sec=*/2500.0,
                                      /*ramp_secs=*/60.0,
                                      /*diurnal_amplitude=*/0.3,
                                      /*diurnal_period_secs=*/600.0};

  std::size_t uploads_per_round() const {
    return nodes * leaves_per_node * updates_per_leaf;
  }
};

struct RoundStats {
  double sim_secs = 0;
  double wall_secs = 0;
  std::uint64_t events = 0;
  std::uint64_t uploads = 0;
  double top_busy = 0;
};

/// Peak resident set size of this process (kB), from /proc/self/status.
long peak_rss_kb() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

std::vector<RoundStats> run_campaign(const CampaignConfig& cfg,
                                     fl::AggTiming timing) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, cfg.nodes);
  dp::DataPlane plane(cluster, dp::lifl_plane(), sim::Rng(12));
  sim::Rng rng(2026);
  wl::ClientPopulation population =
      wl::ClientPopulation::synthetic(cfg.population, /*mobile=*/true, rng);
  wl::ArrivalProcess arrivals(cfg.arrivals);

  std::vector<RoundStats> stats;
  std::uint64_t participant_counter = 0;

  for (std::size_t round = 1; round <= cfg.rounds; ++round) {
    const double round_started = sim.now();
    const std::uint64_t events_before = sim.dispatched();
    const auto wall0 = std::chrono::steady_clock::now();

    // Two-level hierarchy: per-node leaves pulling from the node pool, one
    // top aggregator collecting the leaf partials.
    std::vector<std::unique_ptr<fl::AggregatorRuntime>> aggs;
    bool round_done = false;
    fl::AggregatorRuntime::Config tc;
    tc.id = 1;
    tc.node = 0;
    tc.role = fl::AggRole::kTop;
    tc.timing = timing;
    tc.goal = static_cast<std::uint32_t>(cfg.nodes * cfg.leaves_per_node);
    tc.result_bytes = cfg.model_bytes;
    tc.expected_version = static_cast<std::uint32_t>(round);
    tc.on_result = [&round_done](fl::ModelUpdate) { round_done = true; };
    aggs.push_back(std::make_unique<fl::AggregatorRuntime>(plane, tc));
    aggs.back()->start();
    fl::ParticipantId next_id = 10;
    for (std::size_t n = 0; n < cfg.nodes; ++n) {
      for (std::size_t l = 0; l < cfg.leaves_per_node; ++l) {
        fl::AggregatorRuntime::Config lc;
        lc.id = next_id++;
        lc.node = static_cast<sim::NodeId>(n);
        lc.role = fl::AggRole::kLeaf;
        lc.timing = timing;
        lc.goal = cfg.updates_per_leaf;
        lc.consumer = 1;
        lc.result_bytes = cfg.model_bytes;
        lc.pull_from_pool = true;
        lc.expected_version = static_cast<std::uint32_t>(round);
        aggs.push_back(std::make_unique<fl::AggregatorRuntime>(plane, lc));
        aggs.back()->start();
      }
    }

    // Open-loop arrivals: one pending arrival event at any time; each
    // arrival derives the client's profile from its index on demand.
    const std::uint64_t target = cfg.uploads_per_round();
    std::uint64_t launched = 0;
    const double epoch = sim.now();
    auto spawn_next = std::make_shared<std::function<void(double)>>();
    *spawn_next = [&, epoch](double prev_rel) {
      if (launched >= target) return;
      ++launched;
      const double next_rel = arrivals.next_after(prev_rel, rng);
      // A pseudo-random permutation walks the population without repeats.
      const std::size_t idx = static_cast<std::size_t>(
          (participant_counter++ * 2654435761ull) % cfg.population);
      const wl::ClientProfile profile = population[idx];
      const auto node =
          static_cast<sim::NodeId>(participant_counter % cfg.nodes);
      sim.schedule_at(epoch + next_rel, [&, node, profile, round,
                                         prev = next_rel] {
        fl::ModelUpdate u;
        u.model_version = static_cast<std::uint32_t>(round);
        u.producer = profile.id;
        u.sample_count = profile.samples;
        u.logical_bytes = cfg.model_bytes;
        plane.client_upload(node, std::move(u), profile.uplink_bytes_per_sec);
        (*spawn_next)(prev);
      });
    };
    (*spawn_next)(0.0);

    sim.run();
    if (!round_done) {
      std::fprintf(stderr, "round %zu did not complete\n", round);
      std::exit(1);
    }

    RoundStats rs;
    rs.sim_secs = sim.now() - round_started;
    rs.wall_secs = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall0)
                       .count();
    rs.events = sim.dispatched() - events_before;
    rs.uploads = launched;
    rs.top_busy = aggs.front()->busy_secs();
    stats.push_back(rs);
  }
  return stats;
}

/// Campaign checkpoint/restore knobs (sharded path only).
struct CheckpointOpts {
  double every_secs = 0.0;   ///< 0 = off
  std::string checkpoint;    ///< latest-blob path (--checkpoint=PATH)
  std::string resume;        ///< resume-blob path (--resume=PATH)
};

/// Async-mode and straggler knobs (sharded path only).
struct AsyncOpts {
  double deadline_secs = 2.0;       ///< leaf-buffer seal deadline (kAsync)
  double straggler_fraction = 0.0;  ///< delayed-upload fraction (both modes)
  double straggler_delay_secs = 60.0;
};

/// Edge-client knobs: tiered populations, flaky lifecycle, selection
/// strategy (sharded path only).
struct EdgeOpts {
  wl::TierMix tiers;              ///< --device-tiers=F,M,I (all-zero = off)
  double disconnect_rate = 0.0;   ///< --disconnect-rate=F
  ctrl::SelectorPolicy selector = ctrl::SelectorPolicy::kRandom;

  bool any() const {
    return tiers.enabled() || disconnect_rate > 0.0 ||
           selector != ctrl::SelectorPolicy::kRandom;
  }
};

/// Observability knobs (sharded path only): Perfetto-loadable trace and
/// per-round JSONL metrics. Recording is passive — a traced run's results
/// are bitwise identical to an untraced one.
struct ObsOpts {
  std::string trace;          ///< --trace=FILE.json
  std::string metrics;        ///< --metrics=FILE.jsonl
  std::size_t ring_kb = 4096; ///< --trace-ring-kb=N per-shard ring cap

  bool any() const { return !trace.empty() || !metrics.empty(); }
};

/// Fault-injection and graceful-degradation knobs (sharded path only).
struct FaultOpts {
  bool enabled = false;         ///< --fault-plan=SEED given
  std::uint64_t seed = 1;       ///< fault schedule seed
  double leaf_crash_rate = -1;  ///< <0: default 0.1 when the plan is on
  double quorum = 1.0;          ///< --quorum=F: seal sync rounds at F
  double round_deadline_secs = 60.0;

  bool any() const { return enabled || quorum < 1.0; }
};

/// Run the campaign on the sharded core and print the per-round table.
int run_sharded(const CampaignConfig& cfg, std::size_t shards,
                sys::HierarchyMode mode, double replan_interval, bool reuse,
                sim::SyncMode sync, const CheckpointOpts& ck,
                const AsyncOpts& as, const FaultOpts& fo, const EdgeOpts& eo,
                const ObsOpts& oo) {
  sys::ShardedCampaignConfig scfg;
  scfg.shards = shards;
  scfg.sync_mode = sync;
  scfg.groups = cfg.nodes;
  scfg.rounds = cfg.rounds;
  scfg.updates_per_leaf = cfg.updates_per_leaf;
  scfg.leaves_per_group = cfg.leaves_per_node;
  scfg.model_bytes = cfg.model_bytes;
  scfg.population = cfg.population;
  scfg.peak_per_sec = cfg.arrivals.peak_per_sec;
  scfg.ramp_secs = cfg.arrivals.ramp_secs;
  scfg.diurnal_amplitude = cfg.arrivals.diurnal_amplitude;
  scfg.diurnal_period_secs = cfg.arrivals.diurnal_period_secs;
  scfg.gateway_queues = 0;  // one RSS queue per gateway core
  scfg.hierarchy = mode;
  scfg.replan_interval_secs = replan_interval;
  scfg.reuse = reuse;
  scfg.checkpoint_every_secs = ck.every_secs;
  scfg.checkpoint_path = ck.checkpoint;
  scfg.resume_path = ck.resume;
  scfg.async_deadline_secs = as.deadline_secs;
  scfg.straggler_fraction = as.straggler_fraction;
  scfg.straggler_delay_secs = as.straggler_delay_secs;
  if (fo.enabled) {
    scfg.fault.seed = fo.seed;
    scfg.fault.leaf_crash_rate =
        fo.leaf_crash_rate >= 0.0 ? fo.leaf_crash_rate : 0.1;
  }
  if (fo.quorum < 1.0) {
    scfg.quorum = fo.quorum;
    scfg.round_deadline_secs = fo.round_deadline_secs;
  }
  scfg.device_tiers = eo.tiers;
  scfg.selector = eo.selector;
  scfg.obs.trace = !oo.trace.empty();
  scfg.obs.metrics = !oo.metrics.empty();
  scfg.obs.trace_ring_kb = oo.ring_kb;
  if (eo.disconnect_rate > 0.0) {
    scfg.lifecycle.disconnect_rate = eo.disconnect_rate;
    scfg.lifecycle.offline_base_secs = 0.05;
    scfg.lifecycle.offline_cap_secs = 1.0;
  }

  const bool planned = mode == sys::HierarchyMode::kPlanned;
  const bool is_async = mode == sys::HierarchyMode::kAsync;
  const char* sync_name = sync == sim::SyncMode::kConservative
                              ? "conservative"
                              : sync == sim::SyncMode::kAdaptive
                                    ? "adaptive"
                                    : "optimistic";
  std::printf(
      "Sharded mega campaign: %zu mobile clients, %zu node groups on %zu "
      "shard threads, %zu %s x %zu uploads, %s hierarchy%s, %s sync\n\n",
      scfg.population, scfg.groups, shards, scfg.rounds,
      is_async ? "model versions" : "rounds", scfg.uploads_per_round(),
      is_async ? "async (FedBuff stream)"
               : (planned ? "planned (streaming)" : "fixed"),
      planned && !reuse ? " (reuse off)" : "", sync_name);
  if (as.straggler_fraction > 0.0) {
    std::printf("stragglers: %.0f%% of uploads delayed %.0f s\n\n",
                100.0 * as.straggler_fraction, as.straggler_delay_secs);
  }
  if (fo.enabled) {
    std::printf(
        "fault plan: seed %llu, %.0f%% leaf crash rate — crashed "
        "aggregators recover losslessly from their pool leases\n\n",
        static_cast<unsigned long long>(scfg.fault.seed),
        100.0 * scfg.fault.leaf_crash_rate);
  }
  if (fo.quorum < 1.0) {
    std::printf("quorum: rounds seal at %.0f%% after a %.0f s deadline\n\n",
                100.0 * fo.quorum, fo.round_deadline_secs);
  }
  if (eo.tiers.enabled()) {
    std::printf(
        "device tiers: %.0f%% flagship / %.0f%% mid-range / %.0f%% IoT, "
        "%s selection\n\n",
        100.0 * eo.tiers.flagship, 100.0 * eo.tiers.mid,
        100.0 * eo.tiers.iot, ctrl::selector_policy_name(eo.selector));
  }
  if (eo.disconnect_rate > 0.0) {
    std::printf(
        "flaky lifecycle: %.0f%% base mid-upload disconnect rate — parked "
        "updates resume chunk-wise from the last acked offset\n\n",
        100.0 * eo.disconnect_rate);
  }

  const auto r = sys::run_sharded_campaign(scfg);
  sys::Table t({is_async ? "version" : "round", "duration(sim s)",
                "samples", "eff weight", "spawned", "reused", "refolded"});
  for (std::size_t i = 0; i < r.round_completed_at.size(); ++i) {
    t.row({std::to_string(i + 1),
           sys::fmt(r.round_completed_at[i] - r.round_started_at[i], 2),
           std::to_string(r.round_samples[i]),
           sys::fmt(r.round_weight[i], 0),
           std::to_string(r.round_spawned[i]),
           std::to_string(r.round_reused[i]),
           std::to_string(r.round_refolded[i])});
  }
  t.print(is_async
              ? "Asynchronous stream (seal on count/deadline; weights "
                "FedAsync staleness-discounted; zero steady-state spawns)"
              : (planned ? "Streaming hierarchy orchestrator (plan -> arm "
                           "-> stream -> re-plan; zero steady-state spawns)"
                         : "Fixed two-level hierarchy (per-round churn "
                           "baseline)"));
  std::printf(
      "%llu events in %.2f s wall (%.2fM events/s aggregate), "
      "%llu windows, %llu cross-shard posts\n",
      static_cast<unsigned long long>(r.events), r.wall_secs,
      r.events / r.wall_secs / 1e6,
      static_cast<unsigned long long>(r.windows),
      static_cast<unsigned long long>(r.cross_posts));
  if (sync != sim::SyncMode::kConservative) {
    std::printf("%s sync: %llu windows skipped, %llu rollbacks\n", sync_name,
                static_cast<unsigned long long>(r.windows_skipped),
                static_cast<unsigned long long>(r.rollbacks));
  }
  if (planned || is_async) {
    std::printf(
        "orchestrator: %llu spawned / %llu reused runtimes, %llu re-plans, "
        "%llu partial drains, peak %u leaves/group\n",
        static_cast<unsigned long long>(r.spawned_total),
        static_cast<unsigned long long>(r.reused_total),
        static_cast<unsigned long long>(r.replans),
        static_cast<unsigned long long>(r.leaf_drains), r.peak_leaves);
  }
  if (fo.any()) {
    std::printf(
        "recovery: %llu leaf / %llu middle / %llu top crashes, %llu updates "
        "re-folded, %llu partials re-injected, %llu upload retries, "
        "%llu quorum seals (%llu uploads abandoned), %.3f s cold-start "
        "billed\n",
        static_cast<unsigned long long>(r.leaf_crashes),
        static_cast<unsigned long long>(r.middle_crashes),
        static_cast<unsigned long long>(r.top_crashes),
        static_cast<unsigned long long>(r.refolded_updates),
        static_cast<unsigned long long>(r.reinjected_partials),
        static_cast<unsigned long long>(r.upload_retries),
        static_cast<unsigned long long>(r.quorum_seals),
        static_cast<unsigned long long>(r.quorum_abandoned),
        r.recovery_secs);
  }
  if (eo.tiers.enabled()) {
    sys::Table tt({"tier", "selected", "completed", "success", "disconnects",
                   "stragglers"});
    for (std::size_t i = 0; i < wl::kTierCount; ++i) {
      const auto& ts = r.tiers[i];
      const double success =
          ts.selected > 0 ? static_cast<double>(ts.completed) /
                                static_cast<double>(ts.selected)
                          : 0.0;
      tt.row({wl::tier_name(static_cast<wl::DeviceTier>(i)),
              std::to_string(ts.selected), std::to_string(ts.completed),
              sys::fmt(100.0 * success, 1) + "%",
              std::to_string(ts.disconnects),
              std::to_string(ts.stragglers)});
    }
    tt.print("Per-tier participation");
  }
  if (eo.disconnect_rate > 0.0) {
    std::printf(
        "lifecycle: %llu disconnects, %llu resumed, %llu chunks acked "
        "(%llu re-sent), %llu redraws, offline-queue peak %llu, "
        "%.1f s gate wait\n",
        static_cast<unsigned long long>(r.disconnects),
        static_cast<unsigned long long>(r.resumed_uploads),
        static_cast<unsigned long long>(r.chunks_sent),
        static_cast<unsigned long long>(r.chunks_resent),
        static_cast<unsigned long long>(r.selection_redraws),
        static_cast<unsigned long long>(r.offline_queue_peak),
        r.gate_wait_secs);
  }
  if (ck.every_secs > 0.0) {
    std::printf(
        "checkpoints: %llu marks billed, %llu blobs written (%llu bytes, "
        "%.3f s encode wall)%s%s\n",
        static_cast<unsigned long long>(r.checkpoint_marks),
        static_cast<unsigned long long>(r.checkpoints_written),
        static_cast<unsigned long long>(r.checkpoint_bytes),
        r.checkpoint_encode_secs,
        ck.checkpoint.empty() ? "" : ", latest at ",
        ck.checkpoint.empty() ? "" : ck.checkpoint.c_str());
  }
  if (!oo.trace.empty()) {
    sys::write_campaign_trace(r, oo.trace);
    std::printf(
        "trace: %llu events recorded (%llu dropped) -> %s — open in "
        "https://ui.perfetto.dev\n",
        static_cast<unsigned long long>(r.obs->trace().recorded_events()),
        static_cast<unsigned long long>(r.obs->trace().dropped_events()),
        oo.trace.c_str());
  }
  if (!oo.metrics.empty()) {
    sys::write_campaign_metrics_jsonl(r, oo.metrics);
    std::printf("metrics: per-round JSONL -> %s\n", oo.metrics.c_str());
  }
  const long rss = peak_rss_kb();
  if (rss > 0) std::printf("peak RSS: %.1f MB\n", rss / 1024.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignConfig cfg;
  std::size_t shards = 0;  // 0 = classic unsharded path
  bool hierarchy_flag = false;
  sys::HierarchyMode mode = sys::HierarchyMode::kFixed;
  double replan_interval = 5.0;
  bool reuse = true;
  bool sync_flag = false;
  sim::SyncMode sync = sim::SyncMode::kConservative;
  CheckpointOpts ck;
  AsyncOpts as;
  FaultOpts fo;
  EdgeOpts eo;
  ObsOpts oo;
  const auto usage = [&argv] {
    std::fprintf(stderr,
                 "usage: %s [population >= 1000] [--shards=K] "
                 "[--hierarchy=fixed|planned|async] [--replan-interval=SECS] "
                 "[--sync-mode=conservative|adaptive|optimistic] "
                 "[--reuse=0|1] [--checkpoint=PATH] [--resume=PATH] "
                 "[--checkpoint-every=SECS] [--async-deadline=SECS] "
                 "[--stragglers=FRACTION] [--straggler-delay=SECS] "
                 "[--fault-plan=SEED] [--leaf-crash-rate=F] [--quorum=F] "
                 "[--device-tiers=F,M,I] [--disconnect-rate=F] "
                 "[--selector=random|scored|cluster] [--trace=FILE.json] "
                 "[--metrics=FILE.jsonl] [--trace-ring-kb=N]\n",
                 argv[0]);
    return 2;
  };
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--shards=", 9) == 0) {
      char* end = nullptr;
      shards = std::strtoul(argv[a] + 9, &end, 10);
      if (end == argv[a] + 9 || *end != '\0' || shards == 0) return usage();
      continue;
    }
    if (std::strncmp(argv[a], "--hierarchy=", 12) == 0) {
      hierarchy_flag = true;
      if (std::strcmp(argv[a] + 12, "planned") == 0) {
        mode = sys::HierarchyMode::kPlanned;
      } else if (std::strcmp(argv[a] + 12, "fixed") == 0) {
        mode = sys::HierarchyMode::kFixed;
      } else if (std::strcmp(argv[a] + 12, "async") == 0) {
        mode = sys::HierarchyMode::kAsync;
      } else {
        return usage();
      }
      continue;
    }
    if (std::strncmp(argv[a], "--sync-mode=", 12) == 0) {
      sync_flag = true;
      if (std::strcmp(argv[a] + 12, "conservative") == 0) {
        sync = sim::SyncMode::kConservative;
      } else if (std::strcmp(argv[a] + 12, "adaptive") == 0) {
        sync = sim::SyncMode::kAdaptive;
      } else if (std::strcmp(argv[a] + 12, "optimistic") == 0) {
        sync = sim::SyncMode::kOptimistic;
      } else {
        return usage();
      }
      continue;
    }
    if (std::strncmp(argv[a], "--async-deadline=", 17) == 0) {
      char* end = nullptr;
      as.deadline_secs = std::strtod(argv[a] + 17, &end);
      if (end == argv[a] + 17 || *end != '\0' ||
          !std::isfinite(as.deadline_secs) || as.deadline_secs < 0.0) {
        return usage();
      }
      continue;
    }
    if (std::strncmp(argv[a], "--stragglers=", 13) == 0) {
      char* end = nullptr;
      as.straggler_fraction = std::strtod(argv[a] + 13, &end);
      if (end == argv[a] + 13 || *end != '\0' ||
          !std::isfinite(as.straggler_fraction) ||
          as.straggler_fraction < 0.0 || as.straggler_fraction > 1.0) {
        return usage();
      }
      continue;
    }
    if (std::strncmp(argv[a], "--straggler-delay=", 18) == 0) {
      char* end = nullptr;
      as.straggler_delay_secs = std::strtod(argv[a] + 18, &end);
      if (end == argv[a] + 18 || *end != '\0' ||
          !std::isfinite(as.straggler_delay_secs) ||
          as.straggler_delay_secs < 0.0) {
        return usage();
      }
      continue;
    }
    if (std::strncmp(argv[a], "--replan-interval=", 18) == 0) {
      char* end = nullptr;
      replan_interval = std::strtod(argv[a] + 18, &end);
      if (end == argv[a] + 18 || *end != '\0' || replan_interval < 0.0) {
        return usage();
      }
      continue;
    }
    if (std::strncmp(argv[a], "--checkpoint-every=", 19) == 0) {
      char* end = nullptr;
      ck.every_secs = std::strtod(argv[a] + 19, &end);
      if (end == argv[a] + 19 || *end != '\0' ||
          !std::isfinite(ck.every_secs) || ck.every_secs <= 0.0) {
        return usage();
      }
      continue;
    }
    if (std::strncmp(argv[a], "--checkpoint=", 13) == 0) {
      ck.checkpoint = argv[a] + 13;
      if (ck.checkpoint.empty()) return usage();
      continue;
    }
    if (std::strncmp(argv[a], "--resume=", 9) == 0) {
      ck.resume = argv[a] + 9;
      if (ck.resume.empty()) return usage();
      continue;
    }
    if (std::strncmp(argv[a], "--fault-plan=", 13) == 0) {
      char* end = nullptr;
      fo.seed = std::strtoull(argv[a] + 13, &end, 10);
      if (end == argv[a] + 13 || *end != '\0') return usage();
      fo.enabled = true;
      continue;
    }
    if (std::strncmp(argv[a], "--leaf-crash-rate=", 18) == 0) {
      char* end = nullptr;
      fo.leaf_crash_rate = std::strtod(argv[a] + 18, &end);
      if (end == argv[a] + 18 || *end != '\0' ||
          !std::isfinite(fo.leaf_crash_rate) || fo.leaf_crash_rate < 0.0 ||
          fo.leaf_crash_rate > 1.0) {
        return usage();
      }
      fo.enabled = true;
      continue;
    }
    if (std::strncmp(argv[a], "--quorum=", 9) == 0) {
      char* end = nullptr;
      fo.quorum = std::strtod(argv[a] + 9, &end);
      if (end == argv[a] + 9 || *end != '\0' || !std::isfinite(fo.quorum) ||
          fo.quorum <= 0.0 || fo.quorum > 1.0) {
        return usage();
      }
      continue;
    }
    if (std::strncmp(argv[a], "--device-tiers=", 15) == 0) {
      char* end = nullptr;
      const char* p = argv[a] + 15;
      eo.tiers.flagship = std::strtod(p, &end);
      if (end == p || *end != ',') return usage();
      p = end + 1;
      eo.tiers.mid = std::strtod(p, &end);
      if (end == p || *end != ',') return usage();
      p = end + 1;
      eo.tiers.iot = std::strtod(p, &end);
      if (end == p || *end != '\0' || !eo.tiers.enabled()) return usage();
      continue;
    }
    if (std::strncmp(argv[a], "--disconnect-rate=", 18) == 0) {
      char* end = nullptr;
      eo.disconnect_rate = std::strtod(argv[a] + 18, &end);
      if (end == argv[a] + 18 || *end != '\0' ||
          !std::isfinite(eo.disconnect_rate) || eo.disconnect_rate < 0.0 ||
          eo.disconnect_rate >= 1.0) {
        return usage();
      }
      continue;
    }
    if (std::strncmp(argv[a], "--selector=", 11) == 0) {
      if (!ctrl::parse_selector_policy(argv[a] + 11, eo.selector)) {
        return usage();
      }
      continue;
    }
    if (std::strncmp(argv[a], "--trace=", 8) == 0) {
      oo.trace = argv[a] + 8;
      if (oo.trace.empty()) return usage();
      continue;
    }
    if (std::strncmp(argv[a], "--metrics=", 10) == 0) {
      oo.metrics = argv[a] + 10;
      if (oo.metrics.empty()) return usage();
      continue;
    }
    if (std::strncmp(argv[a], "--trace-ring-kb=", 16) == 0) {
      char* end = nullptr;
      oo.ring_kb = std::strtoul(argv[a] + 16, &end, 10);
      if (end == argv[a] + 16 || *end != '\0' || oo.ring_kb == 0) {
        return usage();
      }
      continue;
    }
    if (std::strncmp(argv[a], "--reuse=", 8) == 0) {
      if (std::strcmp(argv[a] + 8, "0") == 0) {
        reuse = false;
      } else if (std::strcmp(argv[a] + 8, "1") == 0) {
        reuse = true;
      } else {
        return usage();
      }
      continue;
    }
    char* end = nullptr;
    cfg.population = std::strtoul(argv[a], &end, 10);
    if (end == argv[a] || *end != '\0' || cfg.population < 1000) {
      return usage();
    }
    // Keep the hierarchy shape; scale the per-round fan-in to the slice.
    while (cfg.uploads_per_round() * cfg.rounds > cfg.population &&
           cfg.leaves_per_node > 1) {
      cfg.leaves_per_node /= 2;
    }
  }
  // The orchestrator and the checkpoint driver run on the sharded campaign
  // path; --hierarchy / --checkpoint* without --shards mean the 1-shard
  // (plain core) execution of it. A --checkpoint without an explicit
  // cadence checkpoints every 20 simulated seconds.
  const bool ck_flag =
      ck.every_secs > 0.0 || !ck.checkpoint.empty() || !ck.resume.empty();
  if (ck_flag && ck.every_secs <= 0.0) ck.every_secs = 20.0;
  if ((hierarchy_flag || ck_flag || sync_flag ||
       as.straggler_fraction > 0.0 || fo.any() || eo.any() || oo.any()) &&
      shards == 0) {
    shards = 1;
  }
  // Faults require an orchestrated hierarchy (leases live in the group
  // pool) and quorum sealing is a planned-mode feature; default to planned
  // when the fault flags are given without an explicit --hierarchy.
  if (fo.any() && !hierarchy_flag) mode = sys::HierarchyMode::kPlanned;
  // Scored/cluster-scan selection learns per-tier telemetry — default a
  // tier mix when --selector is given without --device-tiers.
  if (eo.selector != ctrl::SelectorPolicy::kRandom && !eo.tiers.enabled()) {
    eo.tiers = {0.4, 0.3, 0.3};
  }
  if (shards > 0) {
    return run_sharded(cfg, shards, mode, replan_interval, reuse, sync, ck,
                       as, fo, eo, oo);
  }

  std::printf(
      "Mega campaign: %zu mobile clients, %zu nodes, %zu rounds x %zu "
      "uploads (%.1f%% of the population participates)\n\n",
      cfg.population, cfg.nodes, cfg.rounds, cfg.uploads_per_round(),
      100.0 * static_cast<double>(cfg.uploads_per_round() * cfg.rounds) /
          static_cast<double>(cfg.population));

  for (const auto timing : {fl::AggTiming::kEager, fl::AggTiming::kLazy}) {
    const char* name = timing == fl::AggTiming::kEager ? "eager" : "lazy";
    const auto stats = run_campaign(cfg, timing);

    sys::Table t({"round", "uploads", "sim(s)", "wall(s)", "events",
                  "events/s(wall)", "top_busy(s)"});
    std::uint64_t total_events = 0;
    double total_wall = 0;
    for (std::size_t i = 0; i < stats.size(); ++i) {
      const auto& r = stats[i];
      t.row({std::to_string(i + 1), std::to_string(r.uploads),
             sys::fmt(r.sim_secs, 1), sys::fmt(r.wall_secs, 2),
             std::to_string(r.events),
             sys::fmt(r.events / r.wall_secs / 1e6, 2) + "M",
             sys::fmt(r.top_busy, 2)});
      total_events += r.events;
      total_wall += r.wall_secs;
    }
    t.print(std::string("LIFL hierarchy, ") + name + " aggregation");
    std::printf("%s totals: %llu events in %.1f s wall (%.2fM events/s)\n\n",
                name, static_cast<unsigned long long>(total_events),
                total_wall, total_events / total_wall / 1e6);
  }

  const long rss = peak_rss_kb();
  if (rss > 0) {
    std::printf(
        "peak RSS: %.1f MB — flat in the population size: profiles are\n"
        "derived per index from the RNG stream and only in-flight uploads\n"
        "and the %zu-instance hierarchy are resident (O(active clients)).\n",
        rss / 1024.0, cfg.nodes * cfg.leaves_per_node + 1);
  }
  return 0;
}
