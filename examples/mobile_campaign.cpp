// Cross-device FL campaign on mobile clients — the scenario that motivates
// LIFL's elasticity (§1, §6.2 ResNet-18 setup).
//
// A population of 2,800 phone-class clients with dynamic availability
// (battery/WiFi hibernation) feeds 120 simultaneously active trainers per
// round into a 5-node aggregation cluster. The example runs the same
// campaign on the serverless baseline (SL) and on LIFL, and reports what an
// ML-ops engineer would watch: per-round completion time, aggregation
// completion time (ACT), CPU burned, and the instance churn the autoscaler
// produces.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_mobile_campaign

#include <cstdio>

#include "src/systems/system_config.hpp"
#include "src/systems/table.hpp"
#include "src/systems/training_experiment.hpp"

int main() {
  using namespace lifl;

  sys::TrainingConfig campaign;
  campaign.model = fl::models::resnet18();
  campaign.cluster_nodes = 5;
  campaign.population = 2800;
  campaign.active_per_round = 120;
  campaign.mobile_clients = true;  // hibernate U[0,60] s before training
  campaign.base_train_secs = sim::calib::kTrainSecsResNet18;
  campaign.curve = ml::AccuracyModel::resnet18_femnist();
  campaign.target_accuracy = 0.70;
  campaign.max_rounds = 12;  // a short campaign slice for the example
  // Mobile fleets are flaky: 3% of selected clients drop out mid-round; the
  // selector's keep-alive heartbeat detects and replaces them (§3).
  campaign.dropout_rate = 0.03;

  std::printf("Mobile FL campaign: %zu-client population, %zu active/round, "
              "%zu aggregation nodes\n\n",
              campaign.population, campaign.active_per_round,
              campaign.cluster_nodes);

  for (const auto& system : {sys::make_serverless(), sys::make_lifl()}) {
    sys::TrainingExperiment experiment(system, campaign);
    const sys::TrainingResult result = experiment.run();

    sys::Table t({"round", "duration(s)", "ACT(s)", "cpu(s)", "created",
                  "reused", "nodes"});
    for (const auto& r : result.rounds) {
      t.row({std::to_string(r.round),
             sys::fmt(r.completed_at - r.started_at, 1),
             sys::fmt(r.act, 1), sys::fmt(r.cpu_secs, 1),
             std::to_string(r.created), std::to_string(r.reused),
             std::to_string(r.nodes_used)});
    }
    t.print(result.system + " — per-round view");
    std::printf("%s totals: %.2f h wall, %.2f CPU-h, final accuracy %.1f%%\n",
                result.system.c_str(), result.wall_secs / 3600.0,
                result.cpu_hours_total, result.final_accuracy * 100.0);
  }

  std::printf(
      "\nLIFL completes the same rounds with a fraction of the CPU: its\n"
      "hierarchy is planned per-node from queue estimates, instances are\n"
      "reused across levels, and updates move through shared memory.\n");
  return 0;
}
